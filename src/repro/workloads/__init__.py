"""PARSEC-substitute workloads (Section IV).

Each module implements the algorithm of the corresponding PARSEC benchmark
at reduced input scale, issues its annotated loads through the simulated
memory front-end (so return values can be clobbered with approximations,
exactly like the paper's Pin methodology), and provides the paper's
per-benchmark output-error metric.

Benchmarks and their annotated data (Section IV-A):

==============  ======  =====================================================
blackscholes    float   option input parameters (highly redundant values)
bodytrack       int     image-map pixel values in the likelihood computation
canneal         int     block <x, y> positions inside the cost functions
ferret          float   image-segment feature vectors
fluidanimate    float   particle state during density/acceleration phases
swaptions       float   forward-rate curve inputs
x264            int     reference-frame pixels during motion estimation
==============  ======  =====================================================
"""

from repro.workloads.base import PCTable, Workload, run_precise, run_with_frontend
from repro.workloads.blackscholes import Blackscholes
from repro.workloads.bodytrack import Bodytrack
from repro.workloads.canneal import Canneal
from repro.workloads.ferret import Ferret
from repro.workloads.fluidanimate import Fluidanimate
from repro.workloads.registry import WORKLOADS, get_workload, workload_names
from repro.workloads.swaptions import Swaptions
from repro.workloads.x264 import X264

__all__ = [
    "Blackscholes",
    "Bodytrack",
    "Canneal",
    "Ferret",
    "Fluidanimate",
    "PCTable",
    "Swaptions",
    "WORKLOADS",
    "Workload",
    "X264",
    "get_workload",
    "run_precise",
    "run_with_frontend",
    "workload_names",
]

