"""canneal — simulated-annealing chip placement (PARSEC CAD kernel).

Blocks live on a 2-D grid and are connected by nets; the annealer proposes
random block swaps and accepts them based on the change in routing cost
(total Manhattan wire length to each block's net neighbours). Following
Section IV-A, only the integer ``<x, y>`` coordinates read *inside the cost
functions* are annotated approximate; the positions themselves (and the
stores that swap them) stay precise, and memory addresses/pointers are
never approximated.

The random-swap traffic over a placement larger than the L1 gives canneal
the highest MPKI in Table I (12.50), and the constant swapping makes its
output uniquely sensitive to stale training data (the value-delay study of
Figure 7).

Output error: relative difference between the final routing cost of the
approximate and the precise execution — tolerable because the annealer is
itself a heuristic.
"""

from __future__ import annotations

import math
import numpy as np

from repro.errors import WorkloadError
from repro.sim.frontend import MemoryFrontend
from repro.workloads.base import Workload


class Canneal(Workload):
    """Anneal a random netlist placement with approximate cost reads."""

    name = "canneal"
    float_data = False
    workload_id = 3

    def default_params(self) -> dict:
        return {
            "n_blocks": 8192,
            "fanout": 4,
            "grid_width": 256,
            "grid_height": 64,
            "steps": 4000,
            "initial_temperature": 40.0,
            "cooling": 0.9985,
            #: Non-load instructions per annealing step (swap bookkeeping,
            #: cost arithmetic); calibrates precise MPKI towards Table I.
            "compute_cost": 850,
        }

    @staticmethod
    def small_params() -> dict:
        return {"n_blocks": 512, "steps": 300, "grid_width": 64, "grid_height": 16}

    def _routing_cost(self, pos: np.ndarray, nets: np.ndarray) -> float:
        """Precise total wirelength of a placement (output metric)."""
        src = pos
        dst = pos[nets]  # (n_blocks, fanout, 2)
        return float(
            np.abs(dst - src[:, None, :]).sum()
        )

    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> float:
        n = self.params["n_blocks"]
        fanout = self.params["fanout"]
        width = self.params["grid_width"]
        height = self.params["grid_height"]
        steps = self.params["steps"]
        temperature = self.params["initial_temperature"]
        cooling = self.params["cooling"]
        cost = self.params["compute_cost"]

        if n > width * height:
            raise WorkloadError(
                f"canneal: {n} blocks cannot be placed on a {width}x{height} grid"
            )

        # Random initial placement (a permutation of grid cells) and netlist.
        cells = rng.permutation(width * height)[:n]
        pos = np.stack([cells % width, cells // width], axis=1).astype(np.int64)
        nets = rng.integers(0, n, size=(n, fanout))

        region_x = mem.space.alloc("block_x", n)
        region_y = mem.space.alloc("block_y", n)
        region_net = mem.space.alloc("netlist", n * fanout)
        for i in range(n):
            mem.store(region_x.addr(i), int(pos[i, 0]))
            mem.store(region_y.addr(i), int(pos[i, 1]))
            for k in range(fanout):
                mem.store(region_net.addr(i * fanout + k), int(nets[i, k]))

        pc_x = [self.pcs.site(f"fan_x_{k}") for k in range(fanout)]
        pc_y = [self.pcs.site(f"fan_y_{k}") for k in range(fanout)]
        pc_net = [self.pcs.site(f"net_ptr_{k}") for k in range(fanout)]

        # Pre-draw every random number so the stream cannot diverge between
        # precise and approximate runs.
        picks_a = rng.integers(0, n, size=steps)
        picks_b = rng.integers(0, n, size=steps)
        accept_draws = rng.random(steps)

        def swap_delta(block: int, other: int) -> int:
            """Cost delta for moving ``block`` to ``other``'s position,
            reading neighbour coordinates through approximate loads."""
            bx, by = int(pos[block, 0]), int(pos[block, 1])
            ox, oy = int(pos[other, 0]), int(pos[other, 1])
            delta = 0
            for k in range(fanout):
                # The net pointer is a memory index and must never be
                # approximated (Section IV); it is a precise load.
                neighbour = mem.load(pc_net[k], region_net.addr(block * fanout + k))
                nx = mem.load_approx(pc_x[k], region_x.addr(neighbour), is_float=False)
                ny = mem.load_approx(pc_y[k], region_y.addr(neighbour), is_float=False)
                # Distance arithmetic interleaves with the loads (the cost
                # function's real instruction mix).
                mem.advance(cost // (2 * fanout))
                delta += (abs(ox - nx) + abs(oy - ny)) - (abs(bx - nx) + abs(by - ny))
            return delta

        for step in range(steps):
            mem.set_thread(step % self.threads)
            a = int(picks_a[step])
            b = int(picks_b[step])
            if a == b:
                mem.advance(cost - 2 * fanout * (cost // (2 * fanout)))
                temperature *= cooling
                continue
            delta = swap_delta(a, b) + swap_delta(b, a)
            mem.advance(cost - 2 * fanout * (cost // (2 * fanout)))
            accept = delta < 0 or accept_draws[step] < math.exp(
                -delta / max(temperature, 1e-9)
            )
            if accept:
                pos[[a, b]] = pos[[b, a]]
                mem.store(region_x.addr(a), int(pos[a, 0]))
                mem.store(region_y.addr(a), int(pos[a, 1]))
                mem.store(region_x.addr(b), int(pos[b, 0]))
                mem.store(region_y.addr(b), int(pos[b, 1]))
            temperature *= cooling

        return self._routing_cost(pos, nets)

    def output_error(self, precise: float, approx: float) -> float:
        """Relative difference in final routing cost (Section IV-A)."""
        if precise == 0:
            return 0.0 if approx == 0 else 1.0
        return min(abs(approx - precise) / abs(precise), 1.0)
