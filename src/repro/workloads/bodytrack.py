"""bodytrack — annealed-particle-filter body tracking (PARSEC vision app).

A synthetic body (a bright elliptical blob) moves across four camera image
maps; an annealed particle filter tracks its centre. The likelihood of each
particle is computed from the image-map pixel values at a fixed pattern of
sample points around the particle — those integer pixel loads are the
annotated approximate data, exactly the ``(x, y)`` image-map reads the
paper annotates. Pixels have a finite range, so averaging LHB values keeps
approximations in range and error low (Section VI-B's takeaway).

Output error: pair-wise comparison of the estimated body-position vectors
between the precise and the approximate execution, normalised by the image
diagonal (the paper visualises 7.7 % error in Figure 1).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.sim.frontend import MemoryFrontend
from repro.workloads.base import Workload

_BODY_INTENSITY = 200
_BACKGROUND = 30


class Bodytrack(Workload):
    """Track a moving blob through four noisy camera feeds."""

    name = "bodytrack"
    float_data = False
    workload_id = 4

    def default_params(self) -> dict:
        return {
            "width": 96,
            "height": 64,
            "cameras": 4,
            "particles": 128,
            "timesteps": 8,
            "annealing_layers": 2,
            "sample_points": 16,
            "body_radius": 6.0,
            #: Non-load instructions per particle likelihood evaluation
            #: (exp/weight maths; calibrates MPKI towards Table I's 4.93).
            "compute_cost": 250,
        }

    @staticmethod
    def small_params() -> dict:
        return {
            "width": 64,
            "height": 48,
            "particles": 32,
            "timesteps": 3,
            "annealing_layers": 1,
        }

    # ------------------------------------------------------------------ #
    # Input synthesis                                                    #
    # ------------------------------------------------------------------ #

    def _render(
        self, rng: np.random.Generator, centre: Tuple[float, float]
    ) -> np.ndarray:
        """One camera image: bright ellipse on noisy background."""
        width = self.params["width"]
        height = self.params["height"]
        radius = self.params["body_radius"]
        ys, xs = np.mgrid[0:height, 0:width]
        dist2 = ((xs - centre[0]) / radius) ** 2 + ((ys - centre[1]) / (1.6 * radius)) ** 2
        image = np.where(dist2 <= 1.0, _BODY_INTENSITY, _BACKGROUND)
        image = image + rng.integers(-10, 11, size=image.shape)
        return np.clip(image, 0, 255).astype(np.int64)

    def _true_path(self, t: int) -> Tuple[float, float]:
        """Ground-truth body centre at timestep ``t`` (a gentle arc)."""
        width = self.params["width"]
        height = self.params["height"]
        frac = t / max(self.params["timesteps"] - 1, 1)
        x = width * (0.30 + 0.40 * frac)
        y = height * (0.50 + 0.15 * math.sin(2 * math.pi * frac))
        return x, y

    # ------------------------------------------------------------------ #
    # The particle filter                                                #
    # ------------------------------------------------------------------ #

    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> List[Tuple[float, float]]:
        width = self.params["width"]
        height = self.params["height"]
        cameras = self.params["cameras"]
        n_particles = self.params["particles"]
        timesteps = self.params["timesteps"]
        layers = self.params["annealing_layers"]
        n_points = self.params["sample_points"]
        cost = self.params["compute_cost"]

        # Fixed likelihood sampling pattern (a ring around the particle).
        angles = np.linspace(0, 2 * math.pi, n_points, endpoint=False)
        pattern = np.stack(
            [0.6 * self.params["body_radius"] * np.cos(angles),
             0.6 * self.params["body_radius"] * np.sin(angles)],
            axis=1,
        )

        regions = [
            mem.space.alloc(f"camera_{c}", width * height) for c in range(cameras)
        ]
        # Edge maps participate in the likelihood too but are *not*
        # annotated (the paper approximates only the image-map values), so
        # their loads stay precise and contribute background misses.
        edge_regions = [
            mem.space.alloc(f"edges_{c}", width * height) for c in range(cameras)
        ]
        pcs = [
            [self.pcs.site(f"pixel_c{c}_p{p}") for p in range(n_points)]
            for c in range(cameras)
        ]
        edge_pcs = [
            [self.pcs.site(f"edge_c{c}_p{p}") for p in range(0, n_points, 4)]
            for c in range(cameras)
        ]

        # Pre-render and store every frame for every camera up front; the
        # rng stream is identical across precise/approximate runs.
        frames = []
        for t in range(timesteps):
            centre = self._true_path(t)
            views = [self._render(rng, centre) for _ in range(cameras)]
            frames.append(views)

        # Pre-draw all filter randomness.
        diffusion = rng.normal(0, 2.0, size=(timesteps, layers, n_particles, 2))
        resample_u = rng.random(size=(timesteps, layers))

        start = self._true_path(0)
        particles = np.full((n_particles, 2), start, dtype=float)
        particles += rng.normal(0, 3.0, size=particles.shape)

        estimates: List[Tuple[float, float]] = []
        for t in range(timesteps):
            # "Capture": store this timestep's frames and their edge maps.
            for c in range(cameras):
                image = frames[t][c]
                edges = np.abs(np.diff(image, axis=1, prepend=image[:, :1]))
                flat = image.ravel()
                flat_edges = edges.ravel()
                for idx in range(flat.size):
                    # Camera frames arrive by DMA: streaming stores that
                    # invalidate any stale cached copy.
                    mem.store(regions[c].addr(idx), int(flat[idx]), streaming=True)
                    mem.store(
                        edge_regions[c].addr(idx), int(flat_edges[idx]), streaming=True
                    )

            for layer in range(layers):
                weights = np.zeros(n_particles)
                for p in range(n_particles):
                    mem.set_thread(p % self.threads)
                    err = 0.0
                    px, py = particles[p]
                    for c in range(cameras):
                        for k in range(n_points):
                            x = int(round(px + pattern[k, 0])) % width
                            y = int(round(py + pattern[k, 1])) % height
                            pixel = mem.load_approx(
                                pcs[c][k], regions[c].addr(y * width + x),
                                is_float=False,
                            )
                            diff = (pixel - _BODY_INTENSITY) / 255.0
                            err += diff * diff
                            if k % 4 == 0:
                                edge = mem.load(
                                    edge_pcs[c][k // 4],
                                    edge_regions[c].addr(y * width + x),
                                )
                                err += 0.1 * (edge / 255.0) ** 2
                            # Per-sample error arithmetic interleaves with
                            # the pixel loads.
                            mem.advance(3)
                    mem.advance(cost - 3 * cameras * n_points)
                    # Annealed likelihood: later layers sharpen the peak.
                    beta = 0.5 * (layer + 1)
                    weights[p] = math.exp(-beta * err / (cameras * n_points) * 40.0)

                total = weights.sum()
                if total <= 0:
                    weights[:] = 1.0 / n_particles
                else:
                    weights /= total

                # Systematic resampling with a pre-drawn offset.
                positions = (resample_u[t, layer] + np.arange(n_particles)) / n_particles
                cumulative = np.cumsum(weights)
                indices = np.searchsorted(cumulative, positions)
                indices = np.clip(indices, 0, n_particles - 1)
                particles = particles[indices] + diffusion[t, layer]

            # The weighted-mean estimate for this timestep.
            estimates.append((float(particles[:, 0].mean()), float(particles[:, 1].mean())))
        return estimates

    def output_error(
        self,
        precise: List[Tuple[float, float]],
        approx: List[Tuple[float, float]],
    ) -> float:
        """Mean pair-wise vector distance, normalised by the image diagonal."""
        assert len(precise) == len(approx)
        diagonal = math.hypot(self.params["width"], self.params["height"])
        if not precise:
            return 0.0
        total = 0.0
        for (px, py), (ax, ay) in zip(precise, approx):
            total += math.hypot(ax - px, ay - py) / diagonal
        return min(total / len(precise), 1.0)
