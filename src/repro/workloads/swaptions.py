"""swaptions — swaption portfolio pricing (PARSEC financial kernel).

Prices a portfolio of European payer swaptions off a shared forward-rate
curve using Black's model: for each swaption the forward swap rate and
annuity are bootstrapped from the curve, then the Black formula gives the
price. The forward-rate curve is the annotated approximate data: it is a
small, heavily reused array of floats — which is why the paper measures an
L1 MPKI of ~5e-05 for swaptions (essentially everything hits after the
first scan).

Output error (Section IV-A): the error of each approximated price against
its precise price, averaged with all prices weighted equally.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.sim.frontend import MemoryFrontend
from repro.workloads.base import Workload


def _cdf(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def black_swaption_price(
    forward_rate: float, strike: float, vol: float, expiry: float, annuity: float
) -> float:
    """Black-76 price of a payer swaption."""
    forward_rate = max(forward_rate, 1e-9)
    strike = max(strike, 1e-9)
    sigma_rt = max(vol, 1e-6) * math.sqrt(max(expiry, 1e-6))
    d1 = (math.log(forward_rate / strike) + 0.5 * sigma_rt * sigma_rt) / sigma_rt
    d2 = d1 - sigma_rt
    return annuity * (forward_rate * _cdf(d1) - strike * _cdf(d2))


class Swaptions(Workload):
    """Price swaptions from an annotated forward curve."""

    name = "swaptions"
    float_data = True
    workload_id = 2

    def default_params(self) -> dict:
        return {
            "n_swaptions": 128,
            "curve_points": 64,
            #: Non-load instructions per swaption (pricing maths).
            "compute_cost": 4000,
        }

    @staticmethod
    def small_params() -> dict:
        return {"n_swaptions": 16, "curve_points": 32, "compute_cost": 400}

    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> List[float]:
        n = self.params["n_swaptions"]
        points = self.params["curve_points"]
        cost = self.params["compute_cost"]

        # A gently upward-sloping forward curve with small noise — realistic
        # redundancy: neighbouring tenors differ by well under 10 %.
        curve = 0.02 + 0.015 * (1 - np.exp(-np.arange(points) / 16.0))
        curve = curve + rng.normal(0, 5e-4, size=points)
        strikes = rng.uniform(0.015, 0.04, size=n)
        vols = rng.uniform(0.15, 0.35, size=n)
        expiries = rng.choice([1.0, 2.0, 5.0], size=n)
        starts = rng.integers(0, points // 2, size=n)
        tenors = rng.integers(4, points // 4, size=n)

        region = mem.space.alloc("forward_curve", points)
        for i in range(points):
            mem.store(region.addr(i), float(curve[i]))

        pc_rate = self.pcs.site("load_forward_rate")

        prices: List[float] = []
        for s in range(n):
            mem.set_thread(s % self.threads)
            start = int(starts[s])
            tenor = int(tenors[s])
            # Bootstrap annuity and forward swap rate from the curve.
            annuity = 0.0
            discount = 1.0
            swap_rate_num = 0.0
            for t in range(start, min(start + tenor, points)):
                rate = mem.load_approx(pc_rate, region.addr(t))
                mem.advance(4)
                discount /= 1.0 + max(rate, -0.5)
                annuity += discount
                swap_rate_num += rate * discount
            forward_swap = swap_rate_num / annuity if annuity > 0 else 0.0
            mem.advance(cost)
            prices.append(
                black_swaption_price(
                    forward_swap, float(strikes[s]), float(vols[s]),
                    float(expiries[s]), annuity,
                )
            )
        return prices

    def output_error(self, precise: List[float], approx: List[float]) -> float:
        """Equal-weighted mean relative price error (Section IV-A)."""
        assert len(precise) == len(approx)
        if not precise:
            return 0.0
        total = 0.0
        for p, a in zip(precise, approx):
            denom = abs(p) if abs(p) > 1e-9 else 1e-9
            total += min(abs(a - p) / denom, 1.0)
        return total / len(precise)
