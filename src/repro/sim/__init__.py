"""Phase-1 simulation: the Pin-substitute trace-driven front-end.

Workloads issue every memory access through a :class:`MemoryFrontend`;
the :class:`TraceSimulator` implementation models the private L1 data cache
and — exactly like the paper's Pin tool — *clobbers the return values* of
annotated loads with approximations, so application output error emerges
organically. It measures the phase-1 metrics: effective MPKI, blocks
fetched, coverage and instruction counts.
"""

from repro.sim.frontend import AddressSpace, MemoryFrontend, PreciseMemory, Region
from repro.sim.kernels import ReplayDowngradeWarning
from repro.sim.stats import SimulationStats
from repro.sim.trace import LoadEvent, PackedTrace, Trace, TraceRecorder
from repro.sim.tracesim import Mode, TraceSimulator

__all__ = [
    "AddressSpace",
    "LoadEvent",
    "MemoryFrontend",
    "Mode",
    "PackedTrace",
    "PreciseMemory",
    "Region",
    "ReplayDowngradeWarning",
    "SimulationStats",
    "Trace",
    "TraceRecorder",
    "TraceSimulator",
]
