"""Vectorized replay kernels over packed trace columns.

:meth:`~repro.sim.tracesim.TraceSimulator.replay` is the hot path under
every phase-1 sweep point, and the scalar interpreters execute one Python
iteration per event. This module replays a :class:`~repro.sim.trace.
PackedTrace` in batched passes instead:

1. **Decompose** the address column into (set, tag) pairs and segment the
   trace into *spans* at store boundaries (``*_kernel`` functions —
   pure numpy, one pass per column).
2. **Oracle** the L1: with every miss fetching its block (true for
   PRECISE and LVP always, and for LVA at approximation degree 0 with no
   fault injection), the hit/miss outcome of every access is a pure
   function of the (address, is_store) stream, so one tight pass over
   the spans precomputes the entire hit mask plus the final cache
   contents. Move-to-end recency lists are exactly LRU here because the
   scalar cache's use clocks are strictly increasing (victims are unique).
3. **Approximator pipeline** as array operations: the context hash of
   every missing PC in a handful of numpy folds
   (:func:`repro.core.hashing.context_hash_array`), the confidence-window
   denominators for the whole miss stream in one pass, and the per-miss
   values gathered only at miss positions. Only the saturating-counter
   state machine itself runs per-miss, over the (much smaller) miss
   stream, with the value-delay queue applied lazily by load ordinal —
   bit-identical to ticking :class:`~repro.core.approximator.DelayQueue`
   once per load, because only miss decisions observe approximator state.
4. **Reconstruct** the architectural state (L1 sets, approximator table,
   GHB, delay clock) so the simulator object is indistinguishable from
   one that replayed scalar.

Configurations whose L1 hit stream is *data-dependent* on technique
state — ``approximation_degree > 0`` (fetch skips) and the GHB
prefetcher (fill injection) — replay through interleaved passes that
fuse the per-set LRU model with the technique core in one loop over
pre-extracted columns (:func:`_lva_degree_replay`,
:func:`_generic_degree_replay`, :func:`_prefetch_replay`). Registry
predictors without a dedicated flat core run inside the oracle pipeline
through the ``MissPredictor`` batch contract
(``on_miss_batch``/``train_batch``, see :mod:`repro.predictors.base`):
:func:`_predictor_miss_driver` hands the predictor maximal runs of
consecutive misses between value-delay training boundaries.

Only genuinely divergent configurations downgrade to the scalar
interpreter now — fault injection, telemetry sampling, non-LRU
replacement, and pre-existing architectural state (see
:func:`vector_ineligibility`); dynamic downgrades warn once per
process. Path selection is driven by ``REPRO_REPLAY_KERNEL``
(``object`` | ``packed`` | ``vector``; default ``vector`` when
eligible). Auto-selection additionally prefers the packed interpreter
for traces shorter than ``REPRO_REPLAY_VECTOR_MIN`` events (default
512) — for tiny traces the kernels' fixed numpy overhead exceeds the
interpreter loop; forcing ``vector`` overrides the threshold (the paths
are bit-identical either way, so this is a pure heuristic, not a
downgrade). ``REPRO_REPLAY_JIT=1`` swaps the oracle loop for a numba-
compiled kernel when numba is importable (optional dependency; silently
import-guarded).
"""

from __future__ import annotations

import os
import warnings
from itertools import repeat
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.confidence import confidence_update_steps
from repro.core.entry import ApproximatorEntry
from repro.core.functions import COMPUTE_FUNCTIONS
from repro.core.hashing import context_hash, context_hash_array
from repro.envspec import (
    REPLAY_JIT_ENV,
    REPLAY_KERNEL_ENV,
    REPLAY_VECTOR_MIN_ENV,
)
from repro.errors import ConfigurationError
from repro.mem.block import CacheBlock, CoherenceState
from repro.predictors import registry as predictor_registry
from repro.prefetch.base import block_of_array

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.sim.trace import PackedTrace
    from repro.sim.tracesim import TraceSimulator

Number = Union[int, float]

#: Environment variable selecting the replay path; declared (with its
#: cache-key classification) in :mod:`repro.envspec`.
ENV_KERNEL = REPLAY_KERNEL_ENV
#: Environment variable enabling the numba oracle (import-guarded).
ENV_JIT = REPLAY_JIT_ENV
#: Environment variable overriding the small-trace auto-selection
#: threshold (events); declared in :mod:`repro.envspec`.
ENV_VECTOR_MIN = REPLAY_VECTOR_MIN_ENV
#: Default event count below which auto-selection prefers ``packed``.
DEFAULT_VECTOR_MIN = 512
#: The recognised replay paths, in increasing order of vectorization.
REPLAY_PATHS = ("object", "packed", "vector")


class ReplayDowngradeWarning(RuntimeWarning):
    """The vector kernel was requested (or defaulted) but cannot run."""


#: Downgrade reasons already warned about (warn once per process).
_warned: Set[str] = set()


def reset_downgrade_warnings() -> None:
    """Forget which downgrade reasons have warned (test isolation)."""
    _warned.clear()


def _warn_once(reason: str) -> None:
    if reason in _warned:
        return
    _warned.add(reason)
    warnings.warn(
        f"vector replay kernel unavailable ({reason}); "
        "falling back to the scalar packed interpreter",
        ReplayDowngradeWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------- #
# Path selection                                                          #
# ---------------------------------------------------------------------- #


def requested_path() -> Optional[str]:
    """The replay path named by ``REPRO_REPLAY_KERNEL``, or None if unset.

    Raises:
        ConfigurationError: on an unrecognised value.
    """
    raw = os.environ.get(ENV_KERNEL, "").strip().lower()
    if not raw:
        return None
    if raw not in REPLAY_PATHS:
        known = ", ".join(REPLAY_PATHS)
        raise ConfigurationError(
            f"{ENV_KERNEL}={raw!r} is not a replay path (known: {known})"
        )
    return raw


def vector_min_events() -> int:
    """Auto-selection threshold: traces shorter than this replay packed.

    Below a few hundred events the vector pipeline's fixed numpy setup
    (column decomposition, span segmentation, state reconstruction)
    costs more than the scalar interpreter loop saves, so auto-selection
    keeps tiny traces on ``packed``. Both paths are bit-identical, so
    the threshold is a pure performance heuristic;
    ``REPRO_REPLAY_KERNEL=vector`` bypasses it.

    Raises:
        ConfigurationError: when ``REPRO_REPLAY_VECTOR_MIN`` is not an
            integer.
    """
    raw = os.environ.get(ENV_VECTOR_MIN, "").strip()
    if not raw:
        return DEFAULT_VECTOR_MIN
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_VECTOR_MIN}={raw!r} is not an integer event count"
        ) from None


def vector_ineligibility(sim: "TraceSimulator") -> Optional[Tuple[str, bool]]:
    """Why ``sim`` cannot replay through the vector kernel, or ``None``.

    Returns ``(reason, dynamic)``; *dynamic* reasons (fault injection,
    telemetry sampling) can differ between otherwise-identical runs, so
    auto-downgrades warn about them even when the kernel was not
    explicitly forced. Inherent configuration reasons (exotic
    replacement, pre-existing architectural state) downgrade silently
    unless ``REPRO_REPLAY_KERNEL=vector`` was explicit.

    Every phase-1 technique configuration is eligible: degree-triggered
    fetch skips and prefetch fill injection replay through interleaved
    passes, and registry predictors run through the batch contract —
    see the module docstring.
    """
    if sim._mem_faults is not None:
        return "fault injection active (REPRO_INJECT)", True
    if sim._tel is not None:
        return "telemetry sampling active", True
    l1 = sim.l1
    if not l1._plain_lru:
        return "non-LRU L1 replacement policy", False
    if (
        l1._clock != 0
        or l1.stats.invalidations != 0
        or sim.stats.loads != 0
        or sim.stats.stores != 0
        or sim.instructions != 0
    ):
        return "simulator already holds architectural state", False
    if sim.approximator is not None and (
        sim.approximator.allocated_entries or sim.approximator.stats.lookups
    ):
        return "approximator already holds architectural state", False
    if sim.predictor is not None and (
        sim.predictor.allocated_entries or sim.predictor.stats.lookups
    ):
        return "predictor already holds architectural state", False
    if sim.generic_predictor is not None and (
        sim.generic_predictor.allocated_entries
        or getattr(sim.generic_predictor.stats, "lookups", 0)
    ):
        return "predictor already holds architectural state", False
    if sim.prefetcher is not None and (
        sim.prefetcher.stats.triggers or sim.prefetcher.stats.issued
    ):
        return "prefetcher already holds architectural state", False
    return None


def select_path(sim: "TraceSimulator", events: Optional[int] = None) -> str:
    """Resolve the replay path for one :meth:`TraceSimulator.replay` call.

    ``REPRO_REPLAY_KERNEL=object|packed`` forces the scalar interpreters;
    ``vector`` (and the unset default) runs the kernel when eligible and
    downgrades to ``packed`` otherwise — warning once when the downgrade
    reason is dynamic, or whenever ``vector`` was explicitly forced.

    When the caller knows the trace length it passes ``events``:
    auto-selection (env unset) then keeps traces shorter than
    :func:`vector_min_events` on the packed interpreter, silently — the
    paths are bit-identical, so the small-trace heuristic is not a
    downgrade and never warns. An explicit ``vector`` bypasses it.
    """
    raw = requested_path()
    if raw in ("object", "packed"):
        return raw
    forced = raw == "vector"
    reason = vector_ineligibility(sim)
    if reason is not None:
        message, dynamic = reason
        if forced or dynamic:
            _warn_once(message)
        return "packed"
    if not forced and events is not None and events < vector_min_events():
        return "packed"
    return "vector"


def select_fullsystem_path() -> str:
    """The replay path for :meth:`FullSystemSimulator.run` (env only).

    The full-system scheduling loop is genuinely sequential (NoC link
    reservations, MSHR merges and degree-triggered fetch skips all feed
    back into timing), so the ``vector`` path vectorizes the per-core
    queue construction over ``per_core_indices`` spans and keeps the
    scheduling loop scalar; every path is bit-identical and always
    eligible.
    """
    raw = requested_path()
    return raw if raw is not None else "vector"


# ---------------------------------------------------------------------- #
# Pure-numpy passes (the `*_kernel` naming contract: no per-event Python  #
# loops, no per-event dataclass attribute reads — see lva-lint LVA003)    #
# ---------------------------------------------------------------------- #


def decompose_addr_kernel(
    addr: np.ndarray, offset_bits: int, index_mask: int, index_bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Split an address column into (set index, block tag) columns.

    The array twin of :meth:`SetAssociativeCache._decompose`, one shift
    and one mask per column.
    """
    block = addr >> offset_bits
    return block & index_mask, block >> index_bits


def segment_spans_kernel(
    is_store: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Boundaries of the maximal store-free spans of a trace.

    Returns ``(starts, ends)`` such that ``events[starts[k]:ends[k]]``
    are all loads and, for every span but the last, ``events[ends[k]]``
    is the store separating it from the next span. A store-free trace is
    one whole-trace span; a store-only trace is all empty spans.
    """
    boundaries = np.flatnonzero(is_store)
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries + 1))
    ends = np.concatenate((boundaries, np.array([len(is_store)], dtype=np.int64)))
    return starts, ends


def load_ordinal_kernel(is_store: np.ndarray) -> np.ndarray:
    """1-based load ordinal of every event (stores inherit the count).

    Ordinal *k* means "the k-th load instruction": the value-delay queue
    is clocked in this unit, so a training pushed at load *k* with delay
    *d* becomes visible to decisions from load ``k + d`` onwards.
    """
    return np.cumsum(~is_store)


def window_denominator_kernel(
    value_f: np.ndarray,
    value_i: np.ndarray,
    value_is_int: np.ndarray,
    window: float,
) -> np.ndarray:
    """Confidence-window denominators for a span of actual values.

    Elementwise ``window * |actual|`` with the scalar path's absolute
    fallback of ``window`` when the actual value is exactly zero — the
    comparison side of the confidence update, batched; the saturating
    accumulation stays in the flat core because it is state-dependent.
    """
    actual = np.where(value_is_int, value_i.astype(np.float64), value_f)
    magnitude = np.abs(actual)
    return np.where(magnitude != 0.0, window * magnitude, window)


def train_boundary_kernel(ords: np.ndarray, delay: int) -> np.ndarray:
    """Training-visibility boundaries for a degree-0 miss stream.

    On the degree-0 paths every miss decision pushes exactly one
    value-delayed training, in decision order, so the pending queue is
    the decision stream itself shifted by ``delay`` load ordinals.
    ``bounds[j]`` is the number of trainings applied strictly before
    decision *j*: training *i* is visible iff it was already pushed
    (``i < j``) and its due ordinal has passed
    (``ords[i] + delay <= ords[j]``). ``ords`` is sorted, so one
    whole-column ``searchsorted`` replaces the per-miss due comparisons
    of the scalar tick; the ``arange`` clamp covers ``delay == 0``,
    where the search would count the not-yet-pushed training *j* itself.
    """
    due = ords + delay
    bounds = np.searchsorted(due, ords, side="right")
    return np.minimum(bounds, np.arange(len(ords), dtype=bounds.dtype))


# ---------------------------------------------------------------------- #
# The L1 oracle                                                           #
# ---------------------------------------------------------------------- #

#: Built on first use when REPRO_REPLAY_JIT=1 and numba imports.
_JIT_ORACLE = None
_JIT_TRIED = False


def _build_jit_oracle():
    """Compile the numba oracle, or return None when numba is missing."""
    try:
        import numba
    except ImportError:
        return None

    @numba.njit(cache=False)
    def oracle(set_idx, btag, is_store, num_sets, assoc):  # pragma: no cover
        n = set_idx.shape[0]
        hits = np.zeros(n, dtype=np.uint8)
        tags = np.full((num_sets, assoc), -1, dtype=np.int64)
        last = np.zeros((num_sets, assoc), dtype=np.int64)
        dirty = np.zeros((num_sets, assoc), dtype=np.uint8)
        counters = np.zeros(3, dtype=np.int64)  # store hits, evictions, wbs
        clock = 0
        for i in range(n):
            s = set_idx[i]
            t = btag[i]
            clock += 1
            way = -1
            for w in range(assoc):
                if tags[s, w] == t:
                    way = w
                    break
            if is_store[i]:
                if way >= 0:
                    counters[0] += 1
                    last[s, way] = clock
                    dirty[s, way] = 1
                continue
            if way >= 0:
                hits[i] = 1
                last[s, way] = clock
                continue
            empty = -1
            for w in range(assoc):
                if tags[s, w] == -1:
                    empty = w
                    break
            if empty < 0:
                victim = 0
                for w in range(1, assoc):
                    if last[s, w] < last[s, victim]:
                        victim = w
                counters[1] += 1
                if dirty[s, victim] == 1:
                    counters[2] += 1
                empty = victim
            tags[s, empty] = t
            last[s, empty] = clock
            dirty[s, empty] = 0
        return hits, counters, tags, last, dirty

    return oracle


def _jit_oracle_enabled() -> bool:
    global _JIT_ORACLE, _JIT_TRIED
    if os.environ.get(ENV_JIT, "") != "1":
        return False
    if not _JIT_TRIED:
        _JIT_TRIED = True
        _JIT_ORACLE = _build_jit_oracle()
        if _JIT_ORACLE is None:
            _warn_once(f"{ENV_JIT}=1 but numba is not importable")
    return _JIT_ORACLE is not None


def _sets_from_ways(tags, last, dirty, num_sets: int, assoc: int):
    """Convert the JIT oracle's way arrays to recency lists + dirty set."""
    sets: List[List[int]] = []
    dirty_keys: Set[Tuple[int, int]] = set()
    for s in range(num_sets):
        ways = []
        for w in range(assoc):
            t = int(tags[s, w])
            if t >= 0:
                ways.append((int(last[s, w]), t))
                if dirty[s, w]:
                    dirty_keys.add((s, t))
        ways.sort()
        sets.append([t for _, t in ways])
    return sets, dirty_keys


def _l1_oracle(
    set_idx: np.ndarray,
    btag: np.ndarray,
    is_store: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    num_sets: int,
    assoc: int,
):
    """Replay the (address, store) stream against an empty LRU cache.

    Every load miss fills immediately (the vector-eligibility
    precondition), so a per-set move-to-end list reproduces the scalar
    cache exactly: use clocks are strictly increasing, making the LRU
    victim unique, and a store miss touches no state at all
    (write-no-allocate probes ``contains`` first).

    Returns ``(hits, store_hits, evictions, writebacks, sets, dirty)``
    where ``sets[s]`` lists the resident tags of set *s* in LRU order
    (oldest first) and ``dirty`` holds the dirtied ``(set, tag)`` pairs.
    """
    if _jit_oracle_enabled():
        hits, counters, tags, last, dirty2d = _JIT_ORACLE(
            np.ascontiguousarray(set_idx),
            np.ascontiguousarray(btag),
            np.ascontiguousarray(is_store.view(np.uint8)),
            num_sets,
            assoc,
        )
        sets, dirty = _sets_from_ways(tags, last, dirty2d, num_sets, assoc)
        return (
            hits,
            int(counters[0]),
            int(counters[1]),
            int(counters[2]),
            sets,
            dirty,
        )

    n = len(set_idx)
    # A bytearray keeps the per-event hit store a C-level byte write; the
    # numpy view is taken once at the end.
    hits = bytearray(n)
    sets: List[List[int]] = [[] for _ in range(num_sets)]
    dirty: Set[Tuple[int, int]] = set()
    store_hits = 0
    evictions = 0
    writebacks = 0
    si = set_idx.tolist()
    bt = btag.tolist()
    span_starts = starts.tolist()
    span_ends = ends.tolist()
    for k in range(len(span_starts)):
        end = span_ends[k]
        for i in range(span_starts[k], end):
            s = si[i]
            t = bt[i]
            ways = sets[s]
            if t in ways:
                if ways[-1] != t:
                    ways.remove(t)
                    ways.append(t)
                hits[i] = 1
            else:
                ways.append(t)
                if len(ways) > assoc:
                    victim = ways[0]
                    del ways[0]
                    evictions += 1
                    key = (s, victim)
                    if key in dirty:
                        dirty.discard(key)
                        writebacks += 1
        if end < n:  # the store event bounding this span
            s = si[end]
            t = bt[end]
            ways = sets[s]
            if t in ways:
                store_hits += 1
                if ways[-1] != t:
                    ways.remove(t)
                    ways.append(t)
                dirty.add((s, t))
    return (
        np.frombuffer(hits, dtype=np.uint8),
        store_hits,
        evictions,
        writebacks,
        sets,
        dirty,
    )


# ---------------------------------------------------------------------- #
# Flat technique cores (miss stream only)                                 #
# ---------------------------------------------------------------------- #


def _values_at(packed: "PackedTrace", idx: np.ndarray) -> List[Number]:
    """Exact Python values of the events at ``idx`` (type-preserving)."""
    ints = packed.value_i[idx].tolist()
    floats = packed.value_f[idx].tolist()
    flags = packed.value_is_int[idx].tolist()
    return [i if flag else f for i, f, flag in zip(ints, floats, flags)]


def _lva_flat(sim: "TraceSimulator", miss: Dict[str, list]) -> Dict[str, object]:
    """Replay the approximable-miss stream through a flat LVA table.

    The direct-mapped table lives in parallel Python lists (tag / conf /
    LHB per slot) instead of entry objects; value-delayed trainings are
    applied lazily immediately before the first decision that could
    observe them, which is exactly equivalent to per-load ticking
    because stats are order-independent totals and only miss decisions
    read approximator state. The visibility points come precomputed from
    :func:`train_boundary_kernel` (``miss["bound"]``), so the loop never
    compares due ordinals — it just advances the pending cursor to the
    batched boundary.
    """
    ap = sim.approximator
    cfg = ap.config
    size = cfg.table_entries
    lhb_cap = cfg.lhb_size
    ghb_cap = cfg.ghb_size
    conf_lo = cfg.confidence_min
    conf_hi = cfg.confidence_max
    step_max = cfg.confidence_step_max
    window = cfg.confidence_window
    window_is_inf = ap._window_is_inf
    inline_window = step_max == 1 and not window_is_inf
    gate_float = cfg.apply_confidence_to_floats
    gate_int = cfg.apply_confidence_to_ints
    compute = ap._compute
    index_bits = ap._index_bits
    tag_bits = ap._tag_bits
    drop_bits = ap._drop_bits

    is_average = compute is COMPUTE_FUNCTIONS["average"]

    tags: List[int] = [-1] * size
    confs: List[int] = [0] * size
    lhbs: List[Optional[list]] = [None] * size
    alloc_seq: List[int] = []
    ghb: Optional[list] = [] if ghb_cap > 0 else None

    bounds = miss["bound"]
    pcs = miss["pc"]
    vals = miss["val"]
    isf = miss["isf"]
    denoms = miss["denom"]
    midx = miss["idx"]  # None when the GHB forces live hashing
    mtag = miss["tag"]
    if midx is None:
        midx = mtag = repeat(None)

    lookups = tag_misses = cold_misses = lowconf = 0
    approximations = covered = 0
    trainings = stale = inc = dec = 0

    # Pending trainings in push order (one per decision); the precomputed
    # boundary says how far the cursor advances before each decision.
    pend: List[tuple] = []
    push = pend.append
    pi = 0
    pushed = 0

    for bound, pc, value, is_float, denom, idx, tag in zip(
        bounds, pcs, vals, isf, denoms, midx, mtag
    ):
        # Apply every training visible to this decision.
        while pi < bound:
            t_idx, t_tag, t_shadow, t_denom, t_actual = pend[pi]
            pi += 1
            trainings += 1
            if ghb is not None:
                ghb.append(t_actual)
                if len(ghb) > ghb_cap:
                    del ghb[0]
            if tags[t_idx] != t_tag:
                stale += 1
                continue
            lhb = lhbs[t_idx]
            lhb.append(t_actual)
            if len(lhb) > lhb_cap:
                del lhb[0]
            if t_shadow is not None:
                if inline_window:
                    steps = 1 if abs(t_shadow - t_actual) <= t_denom else -1
                else:
                    steps = confidence_update_steps(
                        t_shadow, t_actual, window, step_max
                    )
                conf = confs[t_idx] + steps
                if conf > conf_hi:
                    conf = conf_hi
                elif conf < conf_lo:
                    conf = conf_lo
                confs[t_idx] = conf
                if steps > 0:
                    inc += 1
                else:
                    dec += 1

        lookups += 1
        if idx is None:
            idx, tag = context_hash(pc, ghb, index_bits, tag_bits, drop_bits)
        if tags[idx] != tag:
            if tags[idx] == -1:
                alloc_seq.append(idx)
            tags[idx] = tag
            confs[idx] = 0
            lhbs[idx] = []
            tag_misses += 1
            push((idx, tag, None, denom, value))
            pushed += 1
            continue
        lhb = lhbs[idx]
        if not lhb:
            cold_misses += 1
            push((idx, tag, None, denom, value))
            pushed += 1
            continue
        shadow = sum(lhb) / len(lhb) if is_average else compute(lhb)
        if not is_float:
            shadow = int(round(shadow))
        gated = gate_float if is_float else gate_int
        if gated and confs[idx] < 0:
            lowconf += 1
            push((idx, tag, shadow, denom, value))
            pushed += 1
            continue
        approximations += 1
        covered += 1
        push((idx, tag, shadow, denom, value))
        pushed += 1

    # End-of-run drain: finish() trains every pending item in FIFO order.
    while pi < pushed:
        t_idx, t_tag, t_shadow, t_denom, t_actual = pend[pi]
        pi += 1
        trainings += 1
        if ghb is not None:
            ghb.append(t_actual)
            if len(ghb) > ghb_cap:
                del ghb[0]
        if tags[t_idx] != t_tag:
            stale += 1
            continue
        lhb = lhbs[t_idx]
        lhb.append(t_actual)
        if len(lhb) > lhb_cap:
            del lhb[0]
        if t_shadow is not None:
            if inline_window:
                steps = 1 if abs(t_shadow - t_actual) <= t_denom else -1
            else:
                steps = confidence_update_steps(t_shadow, t_actual, window, step_max)
            conf = confs[t_idx] + steps
            if conf > conf_hi:
                conf = conf_hi
            elif conf < conf_lo:
                conf = conf_lo
            confs[t_idx] = conf
            if steps > 0:
                inc += 1
            else:
                dec += 1

    return {
        "covered": covered,
        "lookups": lookups,
        "tag_misses": tag_misses,
        "cold_misses": cold_misses,
        "low_confidence_rejections": lowconf,
        "approximations": approximations,
        "trainings": trainings,
        "stale_trainings": stale,
        "confidence_increments": inc,
        "confidence_decrements": dec,
        "tags": tags,
        "confs": confs,
        "lhbs": lhbs,
        "alloc_seq": alloc_seq,
        "ghb": ghb,
    }


def _lvp_flat(sim: "TraceSimulator", miss: Dict[str, list]) -> Dict[str, object]:
    """Replay the approximable-miss stream through a flat LVP table.

    Same lazy-training structure as :func:`_lva_flat` (precomputed
    :func:`train_boundary_kernel` boundaries); the idealized predictor
    validates the actual value against the LHB snapshot taken at
    decision time, and — unlike the approximator — hashes the context
    on *every* miss (memoised here per PC when the GHB is empty, which is
    sound because the hash is then a pure function of the PC).
    """
    pred = sim.predictor
    cfg = pred.config
    size = cfg.table_entries
    lhb_cap = cfg.lhb_size
    ghb_cap = cfg.ghb_size
    index_bits = cfg.index_bits
    tag_bits = cfg.tag_bits
    drop_bits = cfg.mantissa_drop_bits

    tags: List[int] = [-1] * size
    lhbs: List[Optional[list]] = [None] * size
    alloc_seq: List[int] = []
    ghb: Optional[list] = [] if ghb_cap > 0 else None

    bounds = miss["bound"]
    pcs = miss["pc"]
    vals = miss["val"]
    midx = miss["idx"]  # None when the GHB forces live hashing
    mtag = miss["tag"]

    lookups = predictions = correct_c = incorrect_c = 0
    tag_misses = cold_misses = stale = covered = 0

    pend: List[tuple] = []
    pi = 0

    def train(item: tuple) -> None:
        nonlocal correct_c, incorrect_c, stale, covered
        t_idx, t_tag, snapshot, t_actual = item
        correct = False
        for value in snapshot:
            if value == t_actual:
                correct = True
                break
        if snapshot:
            if correct:
                correct_c += 1
            else:
                incorrect_c += 1
        if ghb is not None:
            ghb.append(t_actual)
            if len(ghb) > ghb_cap:
                del ghb[0]
        if tags[t_idx] != t_tag:
            stale += 1
        else:
            lhb = lhbs[t_idx]
            lhb.append(t_actual)
            if len(lhb) > lhb_cap:
                del lhb[0]
        if correct:
            covered += 1

    for j in range(len(bounds)):
        bound = bounds[j]
        while pi < bound:
            train(pend[pi])
            pi += 1
        lookups += 1
        if midx is not None:
            idx = midx[j]
            tag = mtag[j]
        else:
            idx, tag = context_hash(pcs[j], ghb, index_bits, tag_bits, drop_bits)
        if tags[idx] == -1:
            alloc_seq.append(idx)
            tags[idx] = tag
            lhbs[idx] = []
            tag_misses += 1
        elif tags[idx] != tag:
            tags[idx] = tag
            lhbs[idx] = []
            tag_misses += 1
        snapshot = tuple(lhbs[idx])
        if not snapshot:
            cold_misses += 1
        else:
            predictions += 1
        pend.append((idx, tag, snapshot, vals[j]))

    while pi < len(pend):
        train(pend[pi])
        pi += 1

    return {
        "covered": covered,
        "lookups": lookups,
        "predictions": predictions,
        "correct": correct_c,
        "incorrect": incorrect_c,
        "tag_misses": tag_misses,
        "cold_misses": cold_misses,
        "stale_trainings": stale,
        "tags": tags,
        "lhbs": lhbs,
        "alloc_seq": alloc_seq,
        "ghb": ghb,
    }


def _scalar_miss_run(pred, pcs, flags, addrs) -> list:
    """``on_miss_batch`` substitute for predictors that predate the batch
    half of the ``MissPredictor`` protocol: loop the scalar entry point."""
    on_miss = pred.on_miss
    return [on_miss(pcs[i], flags[i], addrs[i]) for i in range(len(pcs))]


def _scalar_train_run(pred, tokens, actuals) -> int:
    """``train_batch`` substitute looping the scalar ``train``."""
    train = pred.train
    covered = 0
    for i in range(len(tokens)):
        if train(tokens[i], actuals[i]):
            covered += 1
    return covered


def _predictor_miss_driver(sim: "TraceSimulator", miss: Dict[str, list]) -> int:
    """Drive a generic registry predictor over the degree-0 miss stream.

    Unlike the flat cores, this path mutates the *real* predictor object
    through its batch contract, so there is no state to reconstruct and
    any :class:`~repro.predictors.base.MissPredictor` is eligible. The
    driver slices the miss stream into maximal runs of consecutive
    decisions with no value-delay training due between them — a run
    starting at decision *j* extends while the next miss's load ordinal
    stays below both the earliest pending due ordinal and
    ``ords[j] + delay`` (the earliest due a decision inside the run can
    create) — and hands each run to ``on_miss_batch`` / each due batch
    to ``train_batch``. Interleaving is exactly the scalar tick's: a
    training with due ordinal *d* precedes every decision at ordinal
    >= *d*.

    Every degree-0 decision fetches (the oracle precondition; degree
    users replay through :func:`_generic_degree_replay` instead), so
    coverage is the only simulator-level outcome: returns the number of
    covered misses (decision-time values plus covered trainings).
    """
    pred = sim.generic_predictor
    delay = pred.config.value_delay
    on_miss_batch = getattr(pred, "on_miss_batch", None)
    train_batch = getattr(pred, "train_batch", None)

    ords = miss["ord"]
    pcs = miss["pc"]
    isf = miss["isf"]
    vals = miss["val"]
    addrs = miss["addr"]
    n = len(ords)

    pend_due: List[int] = []
    pend_tok: List[object] = []
    pend_val: List[Number] = []
    pi = 0
    covered = 0

    j = 0
    while j < n:
        ordinal = ords[j]
        if pi < len(pend_due) and pend_due[pi] <= ordinal:
            b = pi
            while b < len(pend_due) and pend_due[b] <= ordinal:
                b += 1
            if train_batch is not None:
                covered += train_batch(pend_tok[pi:b], pend_val[pi:b])
            else:
                covered += _scalar_train_run(pred, pend_tok[pi:b], pend_val[pi:b])
            pi = b
        limit = ordinal + delay
        if pi < len(pend_due) and pend_due[pi] < limit:
            limit = pend_due[pi]
        k = j + 1
        while k < n and ords[k] < limit:
            k += 1
        if on_miss_batch is not None:
            decisions = on_miss_batch(pcs[j:k], isf[j:k], addrs[j:k])
        else:
            decisions = _scalar_miss_run(pred, pcs[j:k], isf[j:k], addrs[j:k])
        for m in range(j, k):
            decision = decisions[m - j]
            if decision.value is not None:
                covered += 1
            token = decision.token
            if token is not None:
                pend_due.append(ords[m] + delay)
                pend_tok.append(token)
                pend_val.append(vals[m])
        j = k

    if pi < len(pend_due):
        if train_batch is not None:
            covered += train_batch(pend_tok[pi:], pend_val[pi:])
        else:
            covered += _scalar_train_run(pred, pend_tok[pi:], pend_val[pi:])
    return covered


# ---------------------------------------------------------------------- #
# State reconstruction                                                    #
# ---------------------------------------------------------------------- #


def _rebuild_l1(
    sim: "TraceSimulator",
    sets: List[List[int]],
    dirty: Set[Tuple[int, int]],
    accesses: int,
    hits: int,
    misses: int,
    evictions: int,
    writebacks: int,
    fills: Optional[int] = None,
    prefetched: Optional[Set[Tuple[int, int]]] = None,
) -> None:
    """Install the oracle's final cache contents into ``sim.l1``.

    Recency is encoded with synthetic, strictly increasing use clocks per
    set: only the relative per-set order matters to future LRU victim
    selection, and every synthetic clock stays below the final clock.

    ``fills`` defaults to ``misses`` (every miss fetches — the degree-0
    invariant); the degree and prefetch paths pass their actual fill
    counts (skips fill nothing, prefetches fill extra). ``prefetched``
    marks blocks still carrying an undemanded-prefetch flag.
    """
    l1 = sim.l1
    if fills is None:
        fills = misses
    clock = accesses + fills  # one tick per probe + one per fill
    for s, ways in enumerate(sets):
        frame = l1._sets[s]
        base = clock - len(ways)
        for position, tag in enumerate(ways):
            block = CacheBlock(tag)
            block.valid = True
            block.state = CoherenceState.SHARED
            block.dirty = (s, tag) in dirty
            if prefetched is not None and (s, tag) in prefetched:
                block.prefetched = True
            block.last_use = base + position
            block.inserted_at = base + position
            frame[tag] = block
    l1._clock += clock
    stats = l1.stats
    stats.accesses += accesses
    stats.hits += hits
    stats.misses += misses
    stats.fills += fills
    stats.evictions += evictions
    stats.writebacks += writebacks


def _rebuild_table(
    table: Dict[int, ApproximatorEntry],
    core: Dict[str, object],
    confidence_bits: int,
    lhb_size: int,
    max_degree: int,
) -> None:
    """Materialise flat-core table slots as ``ApproximatorEntry`` objects,
    in first-allocation order (matching the scalar dict's insertion
    order)."""
    tags = core["tags"]
    lhbs = core["lhbs"]
    confs = core.get("confs")
    degs = core.get("degs")
    for index in core["alloc_seq"]:
        entry = ApproximatorEntry(tags[index], confidence_bits, lhb_size, max_degree)
        if confs is not None:
            entry.confidence.reset(confs[index])
        if degs is not None:
            entry.degree_counter = degs[index]
        for value in lhbs[index]:
            entry.lhb.push(value)
        table[index] = entry


# ---------------------------------------------------------------------- #
# The vector replay                                                       #
# ---------------------------------------------------------------------- #


def _uses_degree(name: Optional[str]) -> bool:
    """Does the predictor registered as ``name`` honor the approximation
    degree? Unknown names answer True — the interleaved path is the safe
    (fully general) one."""
    if not name:
        return True
    try:
        return predictor_registry.get_info(name).uses_degree
    except predictor_registry.UnknownPredictorError:
        return True


def replay_vector(sim: "TraceSimulator", packed: "PackedTrace") -> None:
    """Replay ``packed`` through the vectorized kernel pipeline.

    Mutates ``sim`` (stats, L1, technique state, instruction count) into
    exactly the state the scalar interpreter would leave behind; the
    caller applies :meth:`TraceSimulator.finish` as usual (the value
    delay queue is already drained, so finish only stamps totals).

    Dispatch: prefetch mode and degree-active techniques replay through
    the interleaved passes (the L1 hit stream depends on technique
    state there); everything else goes through the oracle pipeline —
    flat cores for LVA/LVP, the batch-contract driver for generic
    registry predictors.

    Preconditions are enforced by :func:`vector_ineligibility`; calling
    this directly on an ineligible simulator is a contract violation.
    """
    n = len(packed)
    sim.instructions += n + int(packed.gap.sum())
    if sim._delay is not None:
        sim._delay._clock += int(np.count_nonzero(~packed.is_store))
    if n == 0:
        return

    if sim.prefetcher is not None:
        _prefetch_replay(sim, packed)
        return

    technique = sim.approximator or sim.predictor or sim.generic_predictor
    if technique is not None and technique.config.approximation_degree > 0:
        if sim.approximator is not None:
            _lva_degree_replay(sim, packed)
            return
        if sim.generic_predictor is not None and _uses_degree(sim.predictor_name):
            _generic_degree_replay(sim, packed)
            return
        # The idealized LVP (and other degree-blind predictors) always
        # fetch: the degree setting is inert and the oracle stays exact.

    is_store = packed.is_store
    loads_mask = ~is_store
    l1 = sim.l1
    set_idx, btag = decompose_addr_kernel(
        packed.addr, l1._offset_bits, l1._index_mask, l1._index_bits
    )
    starts, ends = segment_spans_kernel(is_store)
    hits, store_hits, evictions, writebacks, sets, dirty = _l1_oracle(
        set_idx,
        btag,
        is_store,
        starts,
        ends,
        l1.config.num_sets,
        l1.config.associativity,
    )

    loads = int(np.count_nonzero(loads_mask))
    stores = n - loads
    load_hits = int(np.count_nonzero(hits))
    raw_misses = loads - load_hits
    approx_mask = loads_mask & packed.approximable
    approx_loads = int(np.count_nonzero(approx_mask))

    stats = sim.stats
    stats.loads += loads
    stats.stores += stores
    stats.approx_loads += approx_loads
    stats.raw_misses += raw_misses
    # Every miss fetches on the vector-eligible paths (degree 0, no
    # faults), so fetches mirror raw misses 1:1.
    stats.fetches += raw_misses
    if approx_loads:
        stats.static_approx_pcs.update(np.unique(packed.pc[approx_mask]).tolist())

    _rebuild_l1(
        sim,
        sets,
        dirty,
        loads + store_hits,
        load_hits + store_hits,
        raw_misses,
        evictions,
        writebacks,
    )

    approximator = sim.approximator
    if technique is None:
        return  # precise: no technique state to replay

    miss_mask = approx_mask & (hits == 0)
    miss_idx = np.flatnonzero(miss_mask)
    miss_pc = packed.pc[miss_idx]
    ord_arr = load_ordinal_kernel(is_store)[miss_idx]
    config = technique.config

    if sim.generic_predictor is not None:
        # Generic registry predictors mutate their real object through
        # the batch contract — nothing to reconstruct afterwards.
        miss = {
            "ord": ord_arr.tolist(),
            "pc": miss_pc.tolist(),
            "isf": packed.is_float[miss_idx].tolist(),
            "val": _values_at(packed, miss_idx),
            "addr": packed.addr[miss_idx].tolist(),
        }
        stats.covered_misses += _predictor_miss_driver(sim, miss)
        return

    if config.ghb_size == 0:
        unique_pc, inverse = np.unique(miss_pc, return_inverse=True)
        u_idx, u_tag = context_hash_array(
            unique_pc.astype(np.int64), config.index_bits, config.tag_bits
        )
        midx = u_idx[inverse].tolist()
        mtag = u_tag[inverse].tolist()
        pc_hashes = dict(
            zip(unique_pc.tolist(), zip(u_idx.tolist(), u_tag.tolist()))
        )
    else:
        midx = mtag = None
        pc_hashes = None

    miss = {
        "bound": train_boundary_kernel(ord_arr, config.value_delay).tolist(),
        "pc": miss_pc.tolist(),
        "val": _values_at(packed, miss_idx),
        "isf": packed.is_float[miss_idx].tolist(),
        "denom": window_denominator_kernel(
            packed.value_f[miss_idx],
            packed.value_i[miss_idx],
            packed.value_is_int[miss_idx],
            config.confidence_window,
        ).tolist(),
        "idx": midx,
        "tag": mtag,
    }

    if approximator is not None:
        core = _lva_flat(sim, miss)
        ap = approximator
        stats.covered_misses += core["covered"]
        a_stats = ap.stats
        a_stats.lookups += core["lookups"]
        a_stats.tag_misses += core["tag_misses"]
        a_stats.cold_misses += core["cold_misses"]
        a_stats.low_confidence_rejections += core["low_confidence_rejections"]
        a_stats.approximations += core["approximations"]
        a_stats.trainings += core["trainings"]
        a_stats.stale_trainings += core["stale_trainings"]
        a_stats.confidence_increments += core["confidence_increments"]
        a_stats.confidence_decrements += core["confidence_decrements"]
        a_stats.static_pcs.update(np.unique(miss_pc).tolist())
        _rebuild_table(
            ap._table,
            core,
            config.confidence_bits,
            config.lhb_size,
            config.approximation_degree,
        )
        if pc_hashes is not None:
            ap._pc_hashes.update(pc_hashes)
        elif core["ghb"]:
            for value in core["ghb"]:
                ap.ghb.push(value)
    else:  # lvp
        core = _lvp_flat(sim, miss)
        pred = sim.predictor
        stats.covered_misses += core["covered"]
        p_stats = pred.stats
        p_stats.lookups += core["lookups"]
        p_stats.predictions += core["predictions"]
        p_stats.correct += core["correct"]
        p_stats.incorrect += core["incorrect"]
        p_stats.tag_misses += core["tag_misses"]
        p_stats.cold_misses += core["cold_misses"]
        p_stats.stale_trainings += core["stale_trainings"]
        p_stats.static_pcs.update(np.unique(miss_pc).tolist())
        _rebuild_table(pred._table, core, config.confidence_bits, config.lhb_size, 0)
        if core["ghb"]:
            for value in core["ghb"]:
                pred.ghb.push(value)


# ---------------------------------------------------------------------- #
# Interleaved replays (technique state steers the L1 hit stream)          #
# ---------------------------------------------------------------------- #


def _lva_degree_replay(sim: "TraceSimulator", packed: "PackedTrace") -> None:
    """Interleaved replay for LVA with ``approximation_degree > 0``.

    A confident approximation may skip its fetch entirely (Section
    III-C), leaving the block absent — the L1 hit stream becomes
    data-dependent on approximator state, so the span-segmented oracle
    no longer applies. Instead the per-set LRU model and the flat LVA
    core fuse into one pass over pre-extracted columns: the whole-column
    work (address decomposition, window denominators, context hashes for
    the empty-GHB case, value extraction) stays vectorized, and only the
    inherently sequential decision/fill chain runs as a loop. Trainings
    still apply lazily before the first decision that could observe them
    (they touch no L1 state), and the final architectural state is
    reconstructed exactly as on the oracle path.
    """
    ap = sim.approximator
    cfg = ap.config
    l1 = sim.l1
    set_arr, tag_arr = decompose_addr_kernel(
        packed.addr, l1._offset_bits, l1._index_mask, l1._index_bits
    )
    si = set_arr.tolist()
    bt = tag_arr.tolist()
    st = packed.is_store.tolist()
    approx = packed.approximable.tolist()
    isf_l = packed.is_float.tolist()
    pcs_l = packed.pc.tolist()
    ints = packed.value_i.tolist()
    floats = packed.value_f.tolist()
    int_flags = packed.value_is_int.tolist()
    vals = [i if flag else f for i, f, flag in zip(ints, floats, int_flags)]
    denoms = window_denominator_kernel(
        packed.value_f, packed.value_i, packed.value_is_int, cfg.confidence_window
    ).tolist()

    loads_mask = ~packed.is_store
    approx_mask = loads_mask & packed.approximable
    approx_loads = int(np.count_nonzero(approx_mask))

    # Flat approximator table (same layout as _lva_flat) plus a degree
    # counter column.
    size = cfg.table_entries
    lhb_cap = cfg.lhb_size
    ghb_cap = cfg.ghb_size
    delay = cfg.value_delay
    conf_lo = cfg.confidence_min
    conf_hi = cfg.confidence_max
    step_max = cfg.confidence_step_max
    window = cfg.confidence_window
    inline_window = step_max == 1 and not ap._window_is_inf
    gate_float = cfg.apply_confidence_to_floats
    gate_int = cfg.apply_confidence_to_ints
    compute = ap._compute
    is_average = compute is COMPUTE_FUNCTIONS["average"]
    index_bits = ap._index_bits
    tag_bits = ap._tag_bits
    drop_bits = ap._drop_bits
    max_degree = cfg.approximation_degree

    if ghb_cap == 0:
        # Pure-PC hashing batches over the distinct approximable PCs; the
        # memo installed at the end carries only PCs actually hashed (the
        # miss decisions), matching the scalar path's lazy cache.
        unique_pc = np.unique(packed.pc[approx_mask])
        u_idx, u_tag = context_hash_array(
            unique_pc.astype(np.int64), cfg.index_bits, cfg.tag_bits
        )
        full_hashes: Optional[Dict[int, Tuple[int, int]]] = dict(
            zip(unique_pc.tolist(), zip(u_idx.tolist(), u_tag.tolist()))
        )
        seen_hashes: Optional[Dict[int, Tuple[int, int]]] = {}
        ghb: Optional[list] = None
    else:
        full_hashes = None
        seen_hashes = None
        ghb = []

    tags: List[int] = [-1] * size
    confs: List[int] = [0] * size
    lhbs: List[Optional[list]] = [None] * size
    degs: List[int] = [0] * size
    alloc_seq: List[int] = []

    num_sets = l1.config.num_sets
    assoc = l1.config.associativity
    sets: List[List[int]] = [[] for _ in range(num_sets)]
    dirty: Set[Tuple[int, int]] = set()

    # Pending trainings in push order: (due ordinal, slot, tag, shadow,
    # denominator, actual value).
    pend: List[tuple] = []
    push = pend.append
    pi = 0
    pushed = 0

    loads = stores = load_hits = store_hits = 0
    evictions = writebacks = 0
    fetches = avoided = 0
    lookups = tag_misses = cold_misses = lowconf = 0
    approximations = covered = skipped = 0
    trainings = stale = inc = dec = 0
    miss_pcs: Set[int] = set()
    ordinal = 0

    for i in range(len(st)):
        s = si[i]
        t = bt[i]
        ways = sets[s]
        if st[i]:
            stores += 1
            if t in ways:
                store_hits += 1
                if ways[-1] != t:
                    ways.remove(t)
                    ways.append(t)
                dirty.add((s, t))
            continue
        loads += 1
        ordinal += 1
        if t in ways:
            load_hits += 1
            if ways[-1] != t:
                ways.remove(t)
                ways.append(t)
            continue
        if not approx[i]:
            # Non-approximable miss: plain fetch + fill.
            fetches += 1
            ways.append(t)
            if len(ways) > assoc:
                victim = ways[0]
                del ways[0]
                evictions += 1
                key = (s, victim)
                if key in dirty:
                    dirty.discard(key)
                    writebacks += 1
            continue

        # Apply every training due at (or before) this load ordinal.
        while pi < pushed and pend[pi][0] <= ordinal:
            _, t_idx, t_tag, t_shadow, t_denom, t_actual = pend[pi]
            pi += 1
            trainings += 1
            if ghb is not None:
                ghb.append(t_actual)
                if len(ghb) > ghb_cap:
                    del ghb[0]
            if tags[t_idx] != t_tag:
                stale += 1
                continue
            lhb = lhbs[t_idx]
            lhb.append(t_actual)
            if len(lhb) > lhb_cap:
                del lhb[0]
            degs[t_idx] = max_degree
            if t_shadow is not None:
                if inline_window:
                    steps = 1 if abs(t_shadow - t_actual) <= t_denom else -1
                else:
                    steps = confidence_update_steps(
                        t_shadow, t_actual, window, step_max
                    )
                conf = confs[t_idx] + steps
                if conf > conf_hi:
                    conf = conf_hi
                elif conf < conf_lo:
                    conf = conf_lo
                confs[t_idx] = conf
                if steps > 0:
                    inc += 1
                else:
                    dec += 1

        lookups += 1
        pc = pcs_l[i]
        miss_pcs.add(pc)
        if full_hashes is not None:
            hashed = full_hashes[pc]
            seen_hashes[pc] = hashed
            idx, tag = hashed
        else:
            idx, tag = context_hash(pc, ghb, index_bits, tag_bits, drop_bits)
        value = vals[i]
        due = ordinal + delay
        fetch = True
        if tags[idx] != tag:
            if tags[idx] == -1:
                alloc_seq.append(idx)
            tags[idx] = tag
            confs[idx] = 0
            lhbs[idx] = []
            degs[idx] = max_degree
            tag_misses += 1
            push((due, idx, tag, None, denoms[i], value))
            pushed += 1
        else:
            lhb = lhbs[idx]
            if not lhb:
                cold_misses += 1
                push((due, idx, tag, None, denoms[i], value))
                pushed += 1
            else:
                is_float = isf_l[i]
                shadow = sum(lhb) / len(lhb) if is_average else compute(lhb)
                if not is_float:
                    shadow = int(round(shadow))
                gated = gate_float if is_float else gate_int
                if gated and confs[idx] < 0:
                    lowconf += 1
                    push((due, idx, tag, shadow, denoms[i], value))
                    pushed += 1
                else:
                    approximations += 1
                    covered += 1
                    if degs[idx] > 0:
                        # Degree reuse: no fetch, no fill, no training.
                        degs[idx] -= 1
                        skipped += 1
                        avoided += 1
                        fetch = False
                    else:
                        push((due, idx, tag, shadow, denoms[i], value))
                        pushed += 1
        if fetch:
            fetches += 1
            ways.append(t)
            if len(ways) > assoc:
                victim = ways[0]
                del ways[0]
                evictions += 1
                key = (s, victim)
                if key in dirty:
                    dirty.discard(key)
                    writebacks += 1

    # End-of-run drain: finish() trains every pending item in FIFO order.
    while pi < pushed:
        _, t_idx, t_tag, t_shadow, t_denom, t_actual = pend[pi]
        pi += 1
        trainings += 1
        if ghb is not None:
            ghb.append(t_actual)
            if len(ghb) > ghb_cap:
                del ghb[0]
        if tags[t_idx] != t_tag:
            stale += 1
            continue
        lhb = lhbs[t_idx]
        lhb.append(t_actual)
        if len(lhb) > lhb_cap:
            del lhb[0]
        degs[t_idx] = max_degree
        if t_shadow is not None:
            if inline_window:
                steps = 1 if abs(t_shadow - t_actual) <= t_denom else -1
            else:
                steps = confidence_update_steps(t_shadow, t_actual, window, step_max)
            conf = confs[t_idx] + steps
            if conf > conf_hi:
                conf = conf_hi
            elif conf < conf_lo:
                conf = conf_lo
            confs[t_idx] = conf
            if steps > 0:
                inc += 1
            else:
                dec += 1

    raw_misses = loads - load_hits
    stats = sim.stats
    stats.loads += loads
    stats.stores += stores
    stats.approx_loads += approx_loads
    stats.raw_misses += raw_misses
    stats.fetches += fetches
    stats.fetches_avoided += avoided
    stats.covered_misses += covered
    if approx_loads:
        stats.static_approx_pcs.update(np.unique(packed.pc[approx_mask]).tolist())

    _rebuild_l1(
        sim,
        sets,
        dirty,
        loads + store_hits,
        load_hits + store_hits,
        raw_misses,
        evictions,
        writebacks,
        fills=fetches,
    )

    a_stats = ap.stats
    a_stats.lookups += lookups
    a_stats.tag_misses += tag_misses
    a_stats.cold_misses += cold_misses
    a_stats.low_confidence_rejections += lowconf
    a_stats.approximations += approximations
    a_stats.fetches_skipped += skipped
    a_stats.trainings += trainings
    a_stats.stale_trainings += stale
    a_stats.confidence_increments += inc
    a_stats.confidence_decrements += dec
    a_stats.static_pcs.update(miss_pcs)
    core = {
        "tags": tags,
        "confs": confs,
        "lhbs": lhbs,
        "alloc_seq": alloc_seq,
        "degs": degs,
    }
    _rebuild_table(ap._table, core, cfg.confidence_bits, cfg.lhb_size, max_degree)
    if seen_hashes is not None:
        ap._pc_hashes.update(seen_hashes)
    elif ghb:
        for value in ghb:
            ap.ghb.push(value)


def _generic_degree_replay(sim: "TraceSimulator", packed: "PackedTrace") -> None:
    """Interleaved replay for degree-honoring registry predictors.

    Fully general: every approximable miss drives the *real* predictor
    object through the scalar ``MissPredictor`` contract (a decision may
    skip its fetch, so the L1 model must interleave with the miss
    stream), while column extraction and address decomposition stay
    vectorized. Trainings apply lazily at their due ordinal, exactly
    like the scalar tick; the predictor object ends up in its true final
    state, so nothing is reconstructed.
    """
    pred = sim.generic_predictor
    delay = pred.config.value_delay
    on_miss = pred.on_miss
    train = pred.train
    l1 = sim.l1
    set_arr, tag_arr = decompose_addr_kernel(
        packed.addr, l1._offset_bits, l1._index_mask, l1._index_bits
    )
    si = set_arr.tolist()
    bt = tag_arr.tolist()
    st = packed.is_store.tolist()
    approx = packed.approximable.tolist()
    isf_l = packed.is_float.tolist()
    pcs_l = packed.pc.tolist()
    addr_l = packed.addr.tolist()
    ints = packed.value_i.tolist()
    floats = packed.value_f.tolist()
    int_flags = packed.value_is_int.tolist()
    vals = [i if flag else f for i, f, flag in zip(ints, floats, int_flags)]

    loads_mask = ~packed.is_store
    approx_mask = loads_mask & packed.approximable
    approx_loads = int(np.count_nonzero(approx_mask))

    num_sets = l1.config.num_sets
    assoc = l1.config.associativity
    sets: List[List[int]] = [[] for _ in range(num_sets)]
    dirty: Set[Tuple[int, int]] = set()

    pend_due: List[int] = []
    pend_tok: List[object] = []
    pend_val: List[Number] = []
    pi = 0

    loads = stores = load_hits = store_hits = 0
    evictions = writebacks = 0
    fetches = avoided = covered = 0
    ordinal = 0

    for i in range(len(st)):
        s = si[i]
        t = bt[i]
        ways = sets[s]
        if st[i]:
            stores += 1
            if t in ways:
                store_hits += 1
                if ways[-1] != t:
                    ways.remove(t)
                    ways.append(t)
                dirty.add((s, t))
            continue
        loads += 1
        ordinal += 1
        if t in ways:
            load_hits += 1
            if ways[-1] != t:
                ways.remove(t)
                ways.append(t)
            continue
        if approx[i]:
            while pi < len(pend_due) and pend_due[pi] <= ordinal:
                if train(pend_tok[pi], pend_val[pi]):
                    covered += 1
                pi += 1
            decision = on_miss(pcs_l[i], isf_l[i], addr_l[i])
            if decision.value is not None:
                covered += 1
            if not decision.fetch:
                avoided += 1
                continue
            if decision.token is not None:
                pend_due.append(ordinal + delay)
                pend_tok.append(decision.token)
                pend_val.append(vals[i])
        fetches += 1
        ways.append(t)
        if len(ways) > assoc:
            victim = ways[0]
            del ways[0]
            evictions += 1
            key = (s, victim)
            if key in dirty:
                dirty.discard(key)
                writebacks += 1

    while pi < len(pend_due):
        if train(pend_tok[pi], pend_val[pi]):
            covered += 1
        pi += 1

    raw_misses = loads - load_hits
    stats = sim.stats
    stats.loads += loads
    stats.stores += stores
    stats.approx_loads += approx_loads
    stats.raw_misses += raw_misses
    stats.fetches += fetches
    stats.fetches_avoided += avoided
    stats.covered_misses += covered
    if approx_loads:
        stats.static_approx_pcs.update(np.unique(packed.pc[approx_mask]).tolist())

    _rebuild_l1(
        sim,
        sets,
        dirty,
        loads + store_hits,
        load_hits + store_hits,
        raw_misses,
        evictions,
        writebacks,
        fills=fetches,
    )


def _prefetch_replay(sim: "TraceSimulator", packed: "PackedTrace") -> None:
    """Interleaved replay for ``Mode.PREFETCH``.

    Prefetch fills perturb the L1 contents (and carry a usefulness flag
    cleared on first demand hit), so the hit stream depends on the
    prefetcher's candidates — the per-set LRU model interleaves with the
    real prefetcher object, which observes the demand-miss stream
    exactly as the scalar path presents it. The miss addresses are
    pre-aligned with :func:`~repro.prefetch.base.block_of_array` (the
    prefetcher contract is block-granular), and the candidate fill
    injection shares the inline fill/evict bookkeeping of the other
    interleaved passes.
    """
    pf = sim.prefetcher
    on_miss = pf.on_miss
    l1 = sim.l1
    offset_bits = l1._offset_bits
    index_mask = l1._index_mask
    index_bits = l1._index_bits
    set_arr, tag_arr = decompose_addr_kernel(
        packed.addr, offset_bits, index_mask, index_bits
    )
    si = set_arr.tolist()
    bt = tag_arr.tolist()
    st = packed.is_store.tolist()
    pcs_l = packed.pc.tolist()
    blocks_l = block_of_array(packed.addr, pf.block_bytes).tolist()

    loads_mask = ~packed.is_store
    approx_mask = loads_mask & packed.approximable
    approx_loads = int(np.count_nonzero(approx_mask))

    num_sets = l1.config.num_sets
    assoc = l1.config.associativity
    sets: List[List[int]] = [[] for _ in range(num_sets)]
    dirty: Set[Tuple[int, int]] = set()
    prefetched: Set[Tuple[int, int]] = set()

    loads = stores = load_hits = store_hits = 0
    evictions = writebacks = 0
    prefetch_fills = useful = 0

    for i in range(len(st)):
        s = si[i]
        t = bt[i]
        ways = sets[s]
        if st[i]:
            stores += 1
            if t in ways:
                store_hits += 1
                if ways[-1] != t:
                    ways.remove(t)
                    ways.append(t)
                key = (s, t)
                dirty.add(key)
                if key in prefetched:
                    prefetched.discard(key)
                    useful += 1
            continue
        loads += 1
        if t in ways:
            load_hits += 1
            if ways[-1] != t:
                ways.remove(t)
                ways.append(t)
            key = (s, t)
            if key in prefetched:
                prefetched.discard(key)
                useful += 1
            continue
        # Demand miss: fetch + fill, then inject the prefetch candidates.
        ways.append(t)
        if len(ways) > assoc:
            victim = ways[0]
            del ways[0]
            evictions += 1
            key = (s, victim)
            if key in dirty:
                dirty.discard(key)
                writebacks += 1
            prefetched.discard(key)
        for candidate in on_miss(pcs_l[i], blocks_l[i]):
            cb = candidate >> offset_bits
            cs = cb & index_mask
            ct = cb >> index_bits
            cways = sets[cs]
            if ct in cways:
                continue  # resident blocks are not re-fetched
            prefetch_fills += 1
            cways.append(ct)
            if len(cways) > assoc:
                victim = cways[0]
                del cways[0]
                evictions += 1
                key = (cs, victim)
                if key in dirty:
                    dirty.discard(key)
                    writebacks += 1
                prefetched.discard(key)
            prefetched.add((cs, ct))

    raw_misses = loads - load_hits
    fills = raw_misses + prefetch_fills
    stats = sim.stats
    stats.loads += loads
    stats.stores += stores
    stats.approx_loads += approx_loads
    stats.raw_misses += raw_misses
    stats.fetches += fills
    stats.prefetch_fetches += prefetch_fills
    if approx_loads:
        stats.static_approx_pcs.update(np.unique(packed.pc[approx_mask]).tolist())

    l1.stats.useful_prefetches += useful
    _rebuild_l1(
        sim,
        sets,
        dirty,
        loads + store_hits,
        load_hits + store_hits,
        raw_misses,
        evictions,
        writebacks,
        fills=fills,
        prefetched=prefetched,
    )
