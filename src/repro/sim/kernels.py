"""Vectorized replay kernels over packed trace columns.

:meth:`~repro.sim.tracesim.TraceSimulator.replay` is the hot path under
every phase-1 sweep point, and the scalar interpreters execute one Python
iteration per event. This module replays a :class:`~repro.sim.trace.
PackedTrace` in batched passes instead:

1. **Decompose** the address column into (set, tag) pairs and segment the
   trace into *spans* at store boundaries (``*_kernel`` functions —
   pure numpy, one pass per column).
2. **Oracle** the L1: with every miss fetching its block (true for
   PRECISE and LVP always, and for LVA at approximation degree 0 with no
   fault injection), the hit/miss outcome of every access is a pure
   function of the (address, is_store) stream, so one tight pass over
   the spans precomputes the entire hit mask plus the final cache
   contents. Move-to-end recency lists are exactly LRU here because the
   scalar cache's use clocks are strictly increasing (victims are unique).
3. **Approximator pipeline** as array operations: the context hash of
   every missing PC in a handful of numpy folds
   (:func:`repro.core.hashing.context_hash_array`), the confidence-window
   denominators for the whole miss stream in one pass, and the per-miss
   values gathered only at miss positions. Only the saturating-counter
   state machine itself runs per-miss, over the (much smaller) miss
   stream, with the value-delay queue applied lazily by load ordinal —
   bit-identical to ticking :class:`~repro.core.approximator.DelayQueue`
   once per load, because only miss decisions observe approximator state.
4. **Reconstruct** the architectural state (L1 sets, approximator table,
   GHB, delay clock) so the simulator object is indistinguishable from
   one that replayed scalar.

Configurations where vector and scalar control flow can diverge — fault
injection, telemetry sampling, degree-triggered fetch skips, prefetcher
feedback, non-LRU replacement — downgrade to the scalar interpreter
(see :func:`vector_ineligibility`); dynamic downgrades warn once per
process. Path selection is driven by ``REPRO_REPLAY_KERNEL``
(``object`` | ``packed`` | ``vector``; default ``vector`` when
eligible). ``REPRO_REPLAY_JIT=1`` swaps the oracle loop for a numba-
compiled kernel when numba is importable (optional dependency; silently
import-guarded).
"""

from __future__ import annotations

import os
import warnings
from itertools import repeat
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.confidence import confidence_update_steps
from repro.core.entry import ApproximatorEntry
from repro.core.functions import COMPUTE_FUNCTIONS
from repro.core.hashing import context_hash, context_hash_array
from repro.envspec import REPLAY_JIT_ENV, REPLAY_KERNEL_ENV
from repro.errors import ConfigurationError
from repro.mem.block import CacheBlock, CoherenceState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.sim.trace import PackedTrace
    from repro.sim.tracesim import TraceSimulator

Number = Union[int, float]

#: Environment variable selecting the replay path; declared (with its
#: cache-key classification) in :mod:`repro.envspec`.
ENV_KERNEL = REPLAY_KERNEL_ENV
#: Environment variable enabling the numba oracle (import-guarded).
ENV_JIT = REPLAY_JIT_ENV
#: The recognised replay paths, in increasing order of vectorization.
REPLAY_PATHS = ("object", "packed", "vector")


class ReplayDowngradeWarning(RuntimeWarning):
    """The vector kernel was requested (or defaulted) but cannot run."""


#: Downgrade reasons already warned about (warn once per process).
_warned: Set[str] = set()


def reset_downgrade_warnings() -> None:
    """Forget which downgrade reasons have warned (test isolation)."""
    _warned.clear()


def _warn_once(reason: str) -> None:
    if reason in _warned:
        return
    _warned.add(reason)
    warnings.warn(
        f"vector replay kernel unavailable ({reason}); "
        "falling back to the scalar packed interpreter",
        ReplayDowngradeWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------- #
# Path selection                                                          #
# ---------------------------------------------------------------------- #


def requested_path() -> Optional[str]:
    """The replay path named by ``REPRO_REPLAY_KERNEL``, or None if unset.

    Raises:
        ConfigurationError: on an unrecognised value.
    """
    raw = os.environ.get(ENV_KERNEL, "").strip().lower()
    if not raw:
        return None
    if raw not in REPLAY_PATHS:
        known = ", ".join(REPLAY_PATHS)
        raise ConfigurationError(
            f"{ENV_KERNEL}={raw!r} is not a replay path (known: {known})"
        )
    return raw


def vector_ineligibility(sim: "TraceSimulator") -> Optional[Tuple[str, bool]]:
    """Why ``sim`` cannot replay through the vector kernel, or ``None``.

    Returns ``(reason, dynamic)``; *dynamic* reasons (fault injection,
    telemetry sampling) can differ between otherwise-identical runs, so
    auto-downgrades warn about them even when the kernel was not
    explicitly forced. Inherent configuration reasons (prefetch mode,
    approximation degree, exotic replacement) downgrade silently unless
    ``REPRO_REPLAY_KERNEL=vector`` was explicit.
    """
    if sim._mem_faults is not None:
        return "fault injection active (REPRO_INJECT)", True
    if sim._tel is not None:
        return "telemetry sampling active", True
    if sim.prefetcher is not None:
        return "prefetch fills feed back into the miss stream", False
    if sim.generic_predictor is not None:
        name = sim.predictor_name or type(sim.generic_predictor).__name__
        return f"predictor {name!r} has no vector batch-kernel contract", False
    if sim.approximator is not None and sim.approximator.config.approximation_degree > 0:
        return "approximation degree > 0 skips fetches data-dependently", False
    l1 = sim.l1
    if not l1._plain_lru:
        return "non-LRU L1 replacement policy", False
    if (
        l1._clock != 0
        or l1.stats.invalidations != 0
        or sim.stats.loads != 0
        or sim.stats.stores != 0
        or sim.instructions != 0
    ):
        return "simulator already holds architectural state", False
    if sim.approximator is not None and (
        sim.approximator.allocated_entries or sim.approximator.stats.lookups
    ):
        return "approximator already holds architectural state", False
    if sim.predictor is not None and (
        sim.predictor.allocated_entries or sim.predictor.stats.lookups
    ):
        return "predictor already holds architectural state", False
    return None


def select_path(sim: "TraceSimulator") -> str:
    """Resolve the replay path for one :meth:`TraceSimulator.replay` call.

    ``REPRO_REPLAY_KERNEL=object|packed`` forces the scalar interpreters;
    ``vector`` (and the unset default) runs the kernel when eligible and
    downgrades to ``packed`` otherwise — warning once when the downgrade
    reason is dynamic, or whenever ``vector`` was explicitly forced.
    """
    raw = requested_path()
    if raw in ("object", "packed"):
        return raw
    forced = raw == "vector"
    reason = vector_ineligibility(sim)
    if reason is None:
        return "vector"
    message, dynamic = reason
    if forced or dynamic:
        _warn_once(message)
    return "packed"


def select_fullsystem_path() -> str:
    """The replay path for :meth:`FullSystemSimulator.run` (env only).

    The full-system scheduling loop is genuinely sequential (NoC link
    reservations, MSHR merges and degree-triggered fetch skips all feed
    back into timing), so the ``vector`` path vectorizes the per-core
    queue construction over ``per_core_indices`` spans and keeps the
    scheduling loop scalar; every path is bit-identical and always
    eligible.
    """
    raw = requested_path()
    return raw if raw is not None else "vector"


# ---------------------------------------------------------------------- #
# Pure-numpy passes (the `*_kernel` naming contract: no per-event Python  #
# loops, no per-event dataclass attribute reads — see lva-lint LVA003)    #
# ---------------------------------------------------------------------- #


def decompose_addr_kernel(
    addr: np.ndarray, offset_bits: int, index_mask: int, index_bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Split an address column into (set index, block tag) columns.

    The array twin of :meth:`SetAssociativeCache._decompose`, one shift
    and one mask per column.
    """
    block = addr >> offset_bits
    return block & index_mask, block >> index_bits


def segment_spans_kernel(
    is_store: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Boundaries of the maximal store-free spans of a trace.

    Returns ``(starts, ends)`` such that ``events[starts[k]:ends[k]]``
    are all loads and, for every span but the last, ``events[ends[k]]``
    is the store separating it from the next span. A store-free trace is
    one whole-trace span; a store-only trace is all empty spans.
    """
    boundaries = np.flatnonzero(is_store)
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries + 1))
    ends = np.concatenate((boundaries, np.array([len(is_store)], dtype=np.int64)))
    return starts, ends


def load_ordinal_kernel(is_store: np.ndarray) -> np.ndarray:
    """1-based load ordinal of every event (stores inherit the count).

    Ordinal *k* means "the k-th load instruction": the value-delay queue
    is clocked in this unit, so a training pushed at load *k* with delay
    *d* becomes visible to decisions from load ``k + d`` onwards.
    """
    return np.cumsum(~is_store)


def window_denominator_kernel(
    value_f: np.ndarray,
    value_i: np.ndarray,
    value_is_int: np.ndarray,
    window: float,
) -> np.ndarray:
    """Confidence-window denominators for a span of actual values.

    Elementwise ``window * |actual|`` with the scalar path's absolute
    fallback of ``window`` when the actual value is exactly zero — the
    comparison side of the confidence update, batched; the saturating
    accumulation stays in the flat core because it is state-dependent.
    """
    actual = np.where(value_is_int, value_i.astype(np.float64), value_f)
    magnitude = np.abs(actual)
    return np.where(magnitude != 0.0, window * magnitude, window)


# ---------------------------------------------------------------------- #
# The L1 oracle                                                           #
# ---------------------------------------------------------------------- #

#: Built on first use when REPRO_REPLAY_JIT=1 and numba imports.
_JIT_ORACLE = None
_JIT_TRIED = False


def _build_jit_oracle():
    """Compile the numba oracle, or return None when numba is missing."""
    try:
        import numba
    except ImportError:
        return None

    @numba.njit(cache=False)
    def oracle(set_idx, btag, is_store, num_sets, assoc):  # pragma: no cover
        n = set_idx.shape[0]
        hits = np.zeros(n, dtype=np.uint8)
        tags = np.full((num_sets, assoc), -1, dtype=np.int64)
        last = np.zeros((num_sets, assoc), dtype=np.int64)
        dirty = np.zeros((num_sets, assoc), dtype=np.uint8)
        counters = np.zeros(3, dtype=np.int64)  # store hits, evictions, wbs
        clock = 0
        for i in range(n):
            s = set_idx[i]
            t = btag[i]
            clock += 1
            way = -1
            for w in range(assoc):
                if tags[s, w] == t:
                    way = w
                    break
            if is_store[i]:
                if way >= 0:
                    counters[0] += 1
                    last[s, way] = clock
                    dirty[s, way] = 1
                continue
            if way >= 0:
                hits[i] = 1
                last[s, way] = clock
                continue
            empty = -1
            for w in range(assoc):
                if tags[s, w] == -1:
                    empty = w
                    break
            if empty < 0:
                victim = 0
                for w in range(1, assoc):
                    if last[s, w] < last[s, victim]:
                        victim = w
                counters[1] += 1
                if dirty[s, victim] == 1:
                    counters[2] += 1
                empty = victim
            tags[s, empty] = t
            last[s, empty] = clock
            dirty[s, empty] = 0
        return hits, counters, tags, last, dirty

    return oracle


def _jit_oracle_enabled() -> bool:
    global _JIT_ORACLE, _JIT_TRIED
    if os.environ.get(ENV_JIT, "") != "1":
        return False
    if not _JIT_TRIED:
        _JIT_TRIED = True
        _JIT_ORACLE = _build_jit_oracle()
        if _JIT_ORACLE is None:
            _warn_once(f"{ENV_JIT}=1 but numba is not importable")
    return _JIT_ORACLE is not None


def _sets_from_ways(tags, last, dirty, num_sets: int, assoc: int):
    """Convert the JIT oracle's way arrays to recency lists + dirty set."""
    sets: List[List[int]] = []
    dirty_keys: Set[Tuple[int, int]] = set()
    for s in range(num_sets):
        ways = []
        for w in range(assoc):
            t = int(tags[s, w])
            if t >= 0:
                ways.append((int(last[s, w]), t))
                if dirty[s, w]:
                    dirty_keys.add((s, t))
        ways.sort()
        sets.append([t for _, t in ways])
    return sets, dirty_keys


def _l1_oracle(
    set_idx: np.ndarray,
    btag: np.ndarray,
    is_store: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    num_sets: int,
    assoc: int,
):
    """Replay the (address, store) stream against an empty LRU cache.

    Every load miss fills immediately (the vector-eligibility
    precondition), so a per-set move-to-end list reproduces the scalar
    cache exactly: use clocks are strictly increasing, making the LRU
    victim unique, and a store miss touches no state at all
    (write-no-allocate probes ``contains`` first).

    Returns ``(hits, store_hits, evictions, writebacks, sets, dirty)``
    where ``sets[s]`` lists the resident tags of set *s* in LRU order
    (oldest first) and ``dirty`` holds the dirtied ``(set, tag)`` pairs.
    """
    if _jit_oracle_enabled():
        hits, counters, tags, last, dirty2d = _JIT_ORACLE(
            np.ascontiguousarray(set_idx),
            np.ascontiguousarray(btag),
            np.ascontiguousarray(is_store.view(np.uint8)),
            num_sets,
            assoc,
        )
        sets, dirty = _sets_from_ways(tags, last, dirty2d, num_sets, assoc)
        return (
            hits,
            int(counters[0]),
            int(counters[1]),
            int(counters[2]),
            sets,
            dirty,
        )

    n = len(set_idx)
    # A bytearray keeps the per-event hit store a C-level byte write; the
    # numpy view is taken once at the end.
    hits = bytearray(n)
    sets: List[List[int]] = [[] for _ in range(num_sets)]
    dirty: Set[Tuple[int, int]] = set()
    store_hits = 0
    evictions = 0
    writebacks = 0
    si = set_idx.tolist()
    bt = btag.tolist()
    span_starts = starts.tolist()
    span_ends = ends.tolist()
    for k in range(len(span_starts)):
        end = span_ends[k]
        for i in range(span_starts[k], end):
            s = si[i]
            t = bt[i]
            ways = sets[s]
            if t in ways:
                if ways[-1] != t:
                    ways.remove(t)
                    ways.append(t)
                hits[i] = 1
            else:
                ways.append(t)
                if len(ways) > assoc:
                    victim = ways[0]
                    del ways[0]
                    evictions += 1
                    key = (s, victim)
                    if key in dirty:
                        dirty.discard(key)
                        writebacks += 1
        if end < n:  # the store event bounding this span
            s = si[end]
            t = bt[end]
            ways = sets[s]
            if t in ways:
                store_hits += 1
                if ways[-1] != t:
                    ways.remove(t)
                    ways.append(t)
                dirty.add((s, t))
    return (
        np.frombuffer(hits, dtype=np.uint8),
        store_hits,
        evictions,
        writebacks,
        sets,
        dirty,
    )


# ---------------------------------------------------------------------- #
# Flat technique cores (miss stream only)                                 #
# ---------------------------------------------------------------------- #


def _values_at(packed: "PackedTrace", idx: np.ndarray) -> List[Number]:
    """Exact Python values of the events at ``idx`` (type-preserving)."""
    ints = packed.value_i[idx].tolist()
    floats = packed.value_f[idx].tolist()
    flags = packed.value_is_int[idx].tolist()
    return [i if flag else f for i, f, flag in zip(ints, floats, flags)]


def _lva_flat(sim: "TraceSimulator", miss: Dict[str, list]) -> Dict[str, object]:
    """Replay the approximable-miss stream through a flat LVA table.

    The direct-mapped table lives in parallel Python lists (tag / conf /
    LHB per slot) instead of entry objects; value-delayed trainings are
    applied lazily by load ordinal immediately before the first decision
    that could observe them, which is exactly equivalent to per-load
    ticking because stats are order-independent totals and only miss
    decisions read approximator state.
    """
    ap = sim.approximator
    cfg = ap.config
    size = cfg.table_entries
    lhb_cap = cfg.lhb_size
    ghb_cap = cfg.ghb_size
    delay = cfg.value_delay
    conf_lo = cfg.confidence_min
    conf_hi = cfg.confidence_max
    step_max = cfg.confidence_step_max
    window = cfg.confidence_window
    window_is_inf = ap._window_is_inf
    inline_window = step_max == 1 and not window_is_inf
    gate_float = cfg.apply_confidence_to_floats
    gate_int = cfg.apply_confidence_to_ints
    compute = ap._compute
    index_bits = ap._index_bits
    tag_bits = ap._tag_bits
    drop_bits = ap._drop_bits

    is_average = compute is COMPUTE_FUNCTIONS["average"]

    tags: List[int] = [-1] * size
    confs: List[int] = [0] * size
    lhbs: List[Optional[list]] = [None] * size
    alloc_seq: List[int] = []
    ghb: Optional[list] = [] if ghb_cap > 0 else None

    ords = miss["ord"]
    pcs = miss["pc"]
    vals = miss["val"]
    isf = miss["isf"]
    denoms = miss["denom"]
    midx = miss["idx"]  # None when the GHB forces live hashing
    mtag = miss["tag"]
    if midx is None:
        midx = mtag = repeat(None)

    lookups = tag_misses = cold_misses = lowconf = 0
    approximations = covered = 0
    trainings = stale = inc = dec = 0

    # Pending trainings in push order; due ordinals are non-decreasing
    # (clock + constant delay), so one cursor suffices.
    pend: List[tuple] = []
    push = pend.append
    pi = 0
    pushed = 0

    for ordinal, pc, value, is_float, denom, idx, tag in zip(
        ords, pcs, vals, isf, denoms, midx, mtag
    ):
        # Apply every training due strictly before this decision.
        while pi < pushed and pend[pi][0] <= ordinal:
            _, t_idx, t_tag, t_shadow, t_denom, t_actual = pend[pi]
            pi += 1
            trainings += 1
            if ghb is not None:
                ghb.append(t_actual)
                if len(ghb) > ghb_cap:
                    del ghb[0]
            if tags[t_idx] != t_tag:
                stale += 1
                continue
            lhb = lhbs[t_idx]
            lhb.append(t_actual)
            if len(lhb) > lhb_cap:
                del lhb[0]
            if t_shadow is not None:
                if inline_window:
                    steps = 1 if abs(t_shadow - t_actual) <= t_denom else -1
                else:
                    steps = confidence_update_steps(
                        t_shadow, t_actual, window, step_max
                    )
                conf = confs[t_idx] + steps
                if conf > conf_hi:
                    conf = conf_hi
                elif conf < conf_lo:
                    conf = conf_lo
                confs[t_idx] = conf
                if steps > 0:
                    inc += 1
                else:
                    dec += 1

        lookups += 1
        if idx is None:
            idx, tag = context_hash(pc, ghb, index_bits, tag_bits, drop_bits)
        due = ordinal + delay
        if tags[idx] != tag:
            if tags[idx] == -1:
                alloc_seq.append(idx)
            tags[idx] = tag
            confs[idx] = 0
            lhbs[idx] = []
            tag_misses += 1
            push((due, idx, tag, None, denom, value))
            pushed += 1
            continue
        lhb = lhbs[idx]
        if not lhb:
            cold_misses += 1
            push((due, idx, tag, None, denom, value))
            pushed += 1
            continue
        shadow = sum(lhb) / len(lhb) if is_average else compute(lhb)
        if not is_float:
            shadow = int(round(shadow))
        gated = gate_float if is_float else gate_int
        if gated and confs[idx] < 0:
            lowconf += 1
            push((due, idx, tag, shadow, denom, value))
            pushed += 1
            continue
        approximations += 1
        covered += 1
        push((due, idx, tag, shadow, denom, value))
        pushed += 1

    # End-of-run drain: finish() trains every pending item in FIFO order.
    while pi < pushed:
        _, t_idx, t_tag, t_shadow, t_denom, t_actual = pend[pi]
        pi += 1
        trainings += 1
        if ghb is not None:
            ghb.append(t_actual)
            if len(ghb) > ghb_cap:
                del ghb[0]
        if tags[t_idx] != t_tag:
            stale += 1
            continue
        lhb = lhbs[t_idx]
        lhb.append(t_actual)
        if len(lhb) > lhb_cap:
            del lhb[0]
        if t_shadow is not None:
            if inline_window:
                steps = 1 if abs(t_shadow - t_actual) <= t_denom else -1
            else:
                steps = confidence_update_steps(t_shadow, t_actual, window, step_max)
            conf = confs[t_idx] + steps
            if conf > conf_hi:
                conf = conf_hi
            elif conf < conf_lo:
                conf = conf_lo
            confs[t_idx] = conf
            if steps > 0:
                inc += 1
            else:
                dec += 1

    return {
        "covered": covered,
        "lookups": lookups,
        "tag_misses": tag_misses,
        "cold_misses": cold_misses,
        "low_confidence_rejections": lowconf,
        "approximations": approximations,
        "trainings": trainings,
        "stale_trainings": stale,
        "confidence_increments": inc,
        "confidence_decrements": dec,
        "tags": tags,
        "confs": confs,
        "lhbs": lhbs,
        "alloc_seq": alloc_seq,
        "ghb": ghb,
    }


def _lvp_flat(sim: "TraceSimulator", miss: Dict[str, list]) -> Dict[str, object]:
    """Replay the approximable-miss stream through a flat LVP table.

    Same lazy-ordinal structure as :func:`_lva_flat`; the idealized
    predictor validates the actual value against the LHB snapshot taken
    at decision time, and — unlike the approximator — hashes the context
    on *every* miss (memoised here per PC when the GHB is empty, which is
    sound because the hash is then a pure function of the PC).
    """
    pred = sim.predictor
    cfg = pred.config
    size = cfg.table_entries
    lhb_cap = cfg.lhb_size
    ghb_cap = cfg.ghb_size
    delay = cfg.value_delay
    index_bits = cfg.index_bits
    tag_bits = cfg.tag_bits
    drop_bits = cfg.mantissa_drop_bits

    tags: List[int] = [-1] * size
    lhbs: List[Optional[list]] = [None] * size
    alloc_seq: List[int] = []
    ghb: Optional[list] = [] if ghb_cap > 0 else None

    ords = miss["ord"]
    pcs = miss["pc"]
    vals = miss["val"]
    midx = miss["idx"]  # None when the GHB forces live hashing
    mtag = miss["tag"]

    lookups = predictions = correct_c = incorrect_c = 0
    tag_misses = cold_misses = stale = covered = 0

    pend: List[tuple] = []
    pi = 0

    def train(item: tuple) -> None:
        nonlocal correct_c, incorrect_c, stale, covered
        _, t_idx, t_tag, snapshot, t_actual = item
        correct = False
        for value in snapshot:
            if value == t_actual:
                correct = True
                break
        if snapshot:
            if correct:
                correct_c += 1
            else:
                incorrect_c += 1
        if ghb is not None:
            ghb.append(t_actual)
            if len(ghb) > ghb_cap:
                del ghb[0]
        if tags[t_idx] != t_tag:
            stale += 1
        else:
            lhb = lhbs[t_idx]
            lhb.append(t_actual)
            if len(lhb) > lhb_cap:
                del lhb[0]
        if correct:
            covered += 1

    for j in range(len(ords)):
        ordinal = ords[j]
        while pi < len(pend) and pend[pi][0] <= ordinal:
            train(pend[pi])
            pi += 1
        lookups += 1
        if midx is not None:
            idx = midx[j]
            tag = mtag[j]
        else:
            idx, tag = context_hash(pcs[j], ghb, index_bits, tag_bits, drop_bits)
        if tags[idx] == -1:
            alloc_seq.append(idx)
            tags[idx] = tag
            lhbs[idx] = []
            tag_misses += 1
        elif tags[idx] != tag:
            tags[idx] = tag
            lhbs[idx] = []
            tag_misses += 1
        snapshot = tuple(lhbs[idx])
        if not snapshot:
            cold_misses += 1
        else:
            predictions += 1
        pend.append((ordinal + delay, idx, tag, snapshot, vals[j]))

    while pi < len(pend):
        train(pend[pi])
        pi += 1

    return {
        "covered": covered,
        "lookups": lookups,
        "predictions": predictions,
        "correct": correct_c,
        "incorrect": incorrect_c,
        "tag_misses": tag_misses,
        "cold_misses": cold_misses,
        "stale_trainings": stale,
        "tags": tags,
        "lhbs": lhbs,
        "alloc_seq": alloc_seq,
        "ghb": ghb,
    }


# ---------------------------------------------------------------------- #
# State reconstruction                                                    #
# ---------------------------------------------------------------------- #


def _rebuild_l1(
    sim: "TraceSimulator",
    sets: List[List[int]],
    dirty: Set[Tuple[int, int]],
    accesses: int,
    hits: int,
    misses: int,
    evictions: int,
    writebacks: int,
) -> None:
    """Install the oracle's final cache contents into ``sim.l1``.

    Recency is encoded with synthetic, strictly increasing use clocks per
    set: only the relative per-set order matters to future LRU victim
    selection, and every synthetic clock stays below the final clock.
    """
    l1 = sim.l1
    clock = accesses + misses  # one tick per probe + one per fill
    for s, ways in enumerate(sets):
        frame = l1._sets[s]
        base = clock - len(ways)
        for position, tag in enumerate(ways):
            block = CacheBlock(tag)
            block.valid = True
            block.state = CoherenceState.SHARED
            block.dirty = (s, tag) in dirty
            block.last_use = base + position
            block.inserted_at = base + position
            frame[tag] = block
    l1._clock += clock
    stats = l1.stats
    stats.accesses += accesses
    stats.hits += hits
    stats.misses += misses
    stats.fills += misses
    stats.evictions += evictions
    stats.writebacks += writebacks


def _rebuild_table(
    table: Dict[int, ApproximatorEntry],
    core: Dict[str, object],
    confidence_bits: int,
    lhb_size: int,
    max_degree: int,
) -> None:
    """Materialise flat-core table slots as ``ApproximatorEntry`` objects,
    in first-allocation order (matching the scalar dict's insertion
    order)."""
    tags = core["tags"]
    lhbs = core["lhbs"]
    confs = core.get("confs")
    for index in core["alloc_seq"]:
        entry = ApproximatorEntry(tags[index], confidence_bits, lhb_size, max_degree)
        if confs is not None:
            entry.confidence.reset(confs[index])
        for value in lhbs[index]:
            entry.lhb.push(value)
        table[index] = entry


# ---------------------------------------------------------------------- #
# The vector replay                                                       #
# ---------------------------------------------------------------------- #


def replay_vector(sim: "TraceSimulator", packed: "PackedTrace") -> None:
    """Replay ``packed`` through the vectorized kernel pipeline.

    Mutates ``sim`` (stats, L1, technique state, instruction count) into
    exactly the state the scalar interpreter would leave behind; the
    caller applies :meth:`TraceSimulator.finish` as usual (the value
    delay queue is already drained, so finish only stamps totals).

    Preconditions are enforced by :func:`vector_ineligibility`; calling
    this directly on an ineligible simulator is a contract violation.
    """
    n = len(packed)
    sim.instructions += n + int(packed.gap.sum())
    if sim._delay is not None:
        sim._delay._clock += int(np.count_nonzero(~packed.is_store))
    if n == 0:
        return

    is_store = packed.is_store
    loads_mask = ~is_store
    l1 = sim.l1
    set_idx, btag = decompose_addr_kernel(
        packed.addr, l1._offset_bits, l1._index_mask, l1._index_bits
    )
    starts, ends = segment_spans_kernel(is_store)
    hits, store_hits, evictions, writebacks, sets, dirty = _l1_oracle(
        set_idx,
        btag,
        is_store,
        starts,
        ends,
        l1.config.num_sets,
        l1.config.associativity,
    )

    loads = int(np.count_nonzero(loads_mask))
    stores = n - loads
    load_hits = int(np.count_nonzero(hits))
    raw_misses = loads - load_hits
    approx_mask = loads_mask & packed.approximable
    approx_loads = int(np.count_nonzero(approx_mask))

    stats = sim.stats
    stats.loads += loads
    stats.stores += stores
    stats.approx_loads += approx_loads
    stats.raw_misses += raw_misses
    # Every miss fetches on the vector-eligible paths (degree 0, no
    # faults), so fetches mirror raw misses 1:1.
    stats.fetches += raw_misses
    if approx_loads:
        stats.static_approx_pcs.update(np.unique(packed.pc[approx_mask]).tolist())

    _rebuild_l1(
        sim,
        sets,
        dirty,
        loads + store_hits,
        load_hits + store_hits,
        raw_misses,
        evictions,
        writebacks,
    )

    approximator = sim.approximator
    if approximator is None and sim.predictor is None:
        return  # precise: no technique state to replay

    miss_mask = approx_mask & (hits == 0)
    miss_idx = np.flatnonzero(miss_mask)
    miss_pc = packed.pc[miss_idx]
    config = (approximator or sim.predictor).config
    if config.ghb_size == 0:
        unique_pc, inverse = np.unique(miss_pc, return_inverse=True)
        u_idx, u_tag = context_hash_array(
            unique_pc.astype(np.int64), config.index_bits, config.tag_bits
        )
        midx = u_idx[inverse].tolist()
        mtag = u_tag[inverse].tolist()
        pc_hashes = dict(
            zip(unique_pc.tolist(), zip(u_idx.tolist(), u_tag.tolist()))
        )
    else:
        midx = mtag = None
        pc_hashes = None

    miss = {
        "ord": load_ordinal_kernel(is_store)[miss_idx].tolist(),
        "pc": miss_pc.tolist(),
        "val": _values_at(packed, miss_idx),
        "isf": packed.is_float[miss_idx].tolist(),
        "denom": window_denominator_kernel(
            packed.value_f[miss_idx],
            packed.value_i[miss_idx],
            packed.value_is_int[miss_idx],
            config.confidence_window,
        ).tolist(),
        "idx": midx,
        "tag": mtag,
    }

    if approximator is not None:
        core = _lva_flat(sim, miss)
        ap = approximator
        stats.covered_misses += core["covered"]
        a_stats = ap.stats
        a_stats.lookups += core["lookups"]
        a_stats.tag_misses += core["tag_misses"]
        a_stats.cold_misses += core["cold_misses"]
        a_stats.low_confidence_rejections += core["low_confidence_rejections"]
        a_stats.approximations += core["approximations"]
        a_stats.trainings += core["trainings"]
        a_stats.stale_trainings += core["stale_trainings"]
        a_stats.confidence_increments += core["confidence_increments"]
        a_stats.confidence_decrements += core["confidence_decrements"]
        a_stats.static_pcs.update(np.unique(miss_pc).tolist())
        _rebuild_table(
            ap._table,
            core,
            config.confidence_bits,
            config.lhb_size,
            config.approximation_degree,
        )
        if pc_hashes is not None:
            ap._pc_hashes.update(pc_hashes)
        elif core["ghb"]:
            for value in core["ghb"]:
                ap.ghb.push(value)
    else:  # lvp
        core = _lvp_flat(sim, miss)
        pred = sim.predictor
        stats.covered_misses += core["covered"]
        p_stats = pred.stats
        p_stats.lookups += core["lookups"]
        p_stats.predictions += core["predictions"]
        p_stats.correct += core["correct"]
        p_stats.incorrect += core["incorrect"]
        p_stats.tag_misses += core["tag_misses"]
        p_stats.cold_misses += core["cold_misses"]
        p_stats.stale_trainings += core["stale_trainings"]
        p_stats.static_pcs.update(np.unique(miss_pc).tolist())
        _rebuild_table(pred._table, core, config.confidence_bits, config.lhb_size, 0)
        if core["ghb"]:
            for value in core["ghb"]:
                pred.ghb.push(value)
