"""Metrics collected by the phase-1 (Pin-substitute) simulator.

The design-space exploration is driven by three measurements (Section VI):
effective misses-per-kilo-instruction (an approximated load counts as a
hit, since the value is immediately available to the core), the number of
blocks fetched into the L1 (the first-order energy proxy), and application
output error (computed by the workloads themselves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.telemetry.registry import safe_ratio


@dataclass(slots=True)
class SimulationStats:
    """Counters accumulated over one workload run."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    #: Loads to data annotated approximable (hit or miss).
    approx_loads: int = 0
    #: True L1 load misses, before any technique intervenes.
    raw_misses: int = 0
    #: Misses whose value was served by the approximator (LVA) or exactly
    #: predicted (idealized LVP) — these count as hits for effective MPKI.
    covered_misses: int = 0
    #: Blocks fetched into the L1 (demand fetches + prefetches).
    fetches: int = 0
    #: Fetches initiated by a prefetcher rather than a demand miss.
    prefetch_fetches: int = 0
    #: Demand fetches skipped thanks to the approximation degree.
    fetches_avoided: int = 0
    #: Fetches silently lost to an injected memory fault (repro.faults).
    fetches_dropped: int = 0
    #: Memory-served values corrupted by an injected bit flip.
    value_bit_flips: int = 0
    #: Distinct PCs of loads to approximate data (Figure 12).
    static_approx_pcs: Set[int] = field(default_factory=set)

    @property
    def effective_misses(self) -> int:
        """Misses still exposed to the core after coverage."""
        return self.raw_misses - self.covered_misses

    @property
    def mpki(self) -> float:
        """Effective misses per kilo-instruction."""
        return safe_ratio(self.effective_misses, self.instructions, scale=1000.0)

    @property
    def raw_mpki(self) -> float:
        """True miss MPKI, ignoring coverage (the precise-execution figure)."""
        return safe_ratio(self.raw_misses, self.instructions, scale=1000.0)

    @property
    def fetches_per_kilo_instruction(self) -> float:
        """Blocks fetched into L1 per kilo-instruction (energy proxy)."""
        return safe_ratio(self.fetches, self.instructions, scale=1000.0)

    @property
    def coverage(self) -> float:
        """Fraction of raw misses covered by the technique."""
        return safe_ratio(self.covered_misses, self.raw_misses)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict summary for reports."""
        return {
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "approx_loads": self.approx_loads,
            "raw_misses": self.raw_misses,
            "covered_misses": self.covered_misses,
            "effective_misses": self.effective_misses,
            "fetches": self.fetches,
            "prefetch_fetches": self.prefetch_fetches,
            "fetches_avoided": self.fetches_avoided,
            "fetches_dropped": self.fetches_dropped,
            "value_bit_flips": self.value_bit_flips,
            "mpki": self.mpki,
            "raw_mpki": self.raw_mpki,
            "coverage": self.coverage,
            "static_approx_pcs": len(self.static_approx_pcs),
        }
