"""Load traces for the full-system (phase-2) replay.

The full-system simulator is trace-driven, like the paper's two-phase
methodology: phase 1 runs the workload functionally and records every
annotated and precise load with its inter-load instruction gap and thread
id; phase 2 replays the per-thread streams through the 4-core timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Union

import numpy as np

Number = Union[int, float]


@dataclass(frozen=True, slots=True)
class LoadEvent:
    """One dynamic load in a captured trace.

    Attributes:
        tid: Thread id (workloads are configured with 4 threads).
        pc: Instruction address of the load.
        addr: Byte address of the data.
        value: The precise value in memory at trace time (used to train the
            approximator during replay).
        is_float: Data type of the load (drives confidence gating).
        approximable: True when the load was annotated approximate.
        gap: Non-load instructions executed by this thread since its
            previous load.
        is_store: True for store events (recorded only when the recorder
            is created with ``record_stores=True``); stores drive the MSI
            coherence traffic in the full-system replay.
    """

    tid: int
    pc: int
    addr: int
    value: Number
    is_float: bool
    approximable: bool
    gap: int
    is_store: bool = False


class Trace:
    """An ordered collection of :class:`LoadEvent`, with per-thread views."""

    def __init__(self, events: List[LoadEvent] = None) -> None:
        self.events: List[LoadEvent] = list(events) if events else []

    def append(self, event: LoadEvent) -> None:
        """Add an event (in global program order)."""
        self.events.append(event)

    def per_thread(self) -> Dict[int, List[LoadEvent]]:
        """Split into per-thread streams, preserving order."""
        streams: Dict[int, List[LoadEvent]] = {}
        for event in self.events:
            streams.setdefault(event.tid, []).append(event)
        return streams

    @property
    def total_instructions(self) -> int:
        """Loads plus recorded gaps across all threads."""
        return len(self.events) + sum(event.gap for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[LoadEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------ #
    # Persistence                                                        #
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Serialise to a compressed ``.npz`` file.

        Phase-1 trace capture is the expensive step of the methodology;
        persisting traces lets phase-2 sweeps (and other machines) replay
        them without re-running the workload. Values are stored in two
        columns (float and int) selected by the ``is_float`` flag so both
        datatypes round-trip exactly.
        """
        events = self.events
        np.savez_compressed(
            path,
            tid=np.array([e.tid for e in events], dtype=np.int32),
            pc=np.array([e.pc for e in events], dtype=np.int64),
            addr=np.array([e.addr for e in events], dtype=np.int64),
            value_f=np.array(
                [e.value if e.is_float else 0.0 for e in events], dtype=np.float64
            ),
            value_i=np.array(
                [0 if e.is_float else int(e.value) for e in events], dtype=np.int64
            ),
            is_float=np.array([e.is_float for e in events], dtype=bool),
            approximable=np.array([e.approximable for e in events], dtype=bool),
            gap=np.array([e.gap for e in events], dtype=np.int64),
            is_store=np.array([e.is_store for e in events], dtype=bool),
        )

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Deserialise a trace written by :meth:`save`."""
        data = np.load(path)
        events = [
            LoadEvent(
                tid=int(data["tid"][i]),
                pc=int(data["pc"][i]),
                addr=int(data["addr"][i]),
                value=(
                    float(data["value_f"][i])
                    if data["is_float"][i]
                    else int(data["value_i"][i])
                ),
                is_float=bool(data["is_float"][i]),
                approximable=bool(data["approximable"][i]),
                gap=int(data["gap"][i]),
                is_store=bool(data["is_store"][i]) if "is_store" in data else False,
            )
            for i in range(len(data["tid"]))
        ]
        return cls(events)


class TraceRecorder:
    """Attachable sink that captures LoadEvents from a memory front-end.

    Front-ends call :meth:`on_load` for every load and :meth:`on_advance`
    for non-load instructions; the recorder tracks per-thread gaps.
    """

    def __init__(self, record_stores: bool = False) -> None:
        self.trace = Trace()
        self.record_stores = record_stores
        self._gaps: Dict[int, int] = {}

    def on_advance(self, tid: int, instructions: int) -> None:
        """Accumulate non-load instructions for ``tid``."""
        self._gaps[tid] = self._gaps.get(tid, 0) + instructions

    def on_store(self, tid: int, addr: int) -> None:
        """Record one store (only when ``record_stores`` is enabled);
        otherwise it is folded into the gap by the front-end."""
        gap = self._gaps.pop(tid, 0)
        self.trace.append(
            LoadEvent(
                tid, 0, addr, 0, is_float=False, approximable=False,
                gap=gap, is_store=True,
            )
        )

    def on_load(
        self,
        tid: int,
        pc: int,
        addr: int,
        value: Number,
        is_float: bool,
        approximable: bool,
    ) -> None:
        """Record one load, consuming the accumulated gap."""
        gap = self._gaps.pop(tid, 0)
        self.trace.append(
            LoadEvent(tid, pc, addr, value, is_float, approximable, gap)
        )
