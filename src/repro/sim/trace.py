"""Load traces for the full-system (phase-2) replay.

The full-system simulator is trace-driven, like the paper's two-phase
methodology: phase 1 runs the workload functionally and records every
annotated and precise load with its inter-load instruction gap and thread
id; phase 2 replays the per-thread streams through the 4-core timing model.

Two representations exist:

* :class:`Trace` — a list of :class:`LoadEvent` objects, convenient to
  record into and inspect.
* :class:`PackedTrace` — the same events as a structure-of-arrays (one
  NumPy column per field). This is the replay and persistence format:
  columns serialise straight to ``.npy`` files that the trace store
  memory-maps across sweep workers, and the replay hot loops iterate
  packed columns without per-event dataclass allocation.

``Trace.pack()`` / ``PackedTrace.to_trace()`` round-trip losslessly:
values keep their Python type (int vs float) through a discriminator
column, so replaying a packed trace is bit-identical to replaying the
original event list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

Number = Union[int, float]

#: The canonical column set of a packed trace, in serialisation order.
#: ``value_f``/``value_i`` hold the load value (selected by
#: ``value_is_int``, which preserves the value's *Python type* — the
#: semantic datatype flag ``is_float`` is a separate column because a
#: precise ``load()`` of an integer value is typed float by the frontend).
TRACE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("tid", "int32"),
    ("pc", "int64"),
    ("addr", "int64"),
    ("value_f", "float64"),
    ("value_i", "int64"),
    ("value_is_int", "bool"),
    ("is_float", "bool"),
    ("approximable", "bool"),
    ("gap", "int64"),
    ("is_store", "bool"),
)


@dataclass(frozen=True, slots=True)
class LoadEvent:
    """One dynamic load in a captured trace.

    Attributes:
        tid: Thread id (workloads are configured with 4 threads).
        pc: Instruction address of the load.
        addr: Byte address of the data.
        value: The precise value in memory at trace time (used to train the
            approximator during replay).
        is_float: Data type of the load (drives confidence gating).
        approximable: True when the load was annotated approximate.
        gap: Non-load instructions executed by this thread since its
            previous load.
        is_store: True for store events (recorded only when the recorder
            is created with ``record_stores=True``); stores drive the MSI
            coherence traffic in the full-system replay.
    """

    tid: int
    pc: int
    addr: int
    value: Number
    is_float: bool
    approximable: bool
    gap: int
    is_store: bool = False


def _is_int_value(value: Number) -> bool:
    """Whether ``value`` round-trips through the integer column."""
    return isinstance(value, (int, np.integer))


@dataclass(frozen=True, slots=True, eq=False)
class PackedTrace:
    """A trace as a structure of arrays — the replay/persistence format.

    One NumPy array per :class:`LoadEvent` field (see
    :data:`TRACE_COLUMNS`). Columns may be memory-mapped read-only views
    straight out of the on-disk trace store; nothing here mutates them.
    """

    tid: np.ndarray
    pc: np.ndarray
    addr: np.ndarray
    value_f: np.ndarray
    value_i: np.ndarray
    value_is_int: np.ndarray
    is_float: np.ndarray
    approximable: np.ndarray
    gap: np.ndarray
    is_store: np.ndarray

    def __len__(self) -> int:
        return len(self.tid)

    def columns(self) -> Dict[str, np.ndarray]:
        """Name -> array, in :data:`TRACE_COLUMNS` order."""
        return {name: getattr(self, name) for name, _ in TRACE_COLUMNS}

    @property
    def nbytes(self) -> int:
        """Total size of the column data in bytes."""
        return sum(array.nbytes for array in self.columns().values())

    @property
    def total_instructions(self) -> int:
        """Loads plus recorded gaps across all threads."""
        return len(self) + int(self.gap.sum())

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrays(cls, data: Mapping[str, np.ndarray]) -> "PackedTrace":
        """Build from a column mapping, casting dtypes and filling columns
        absent from older serialisations (``is_store`` defaults to all
        False; ``value_is_int`` to the pre-discriminator ``not is_float``
        semantics).

        Raises:
            ValueError: on ragged or non-1-D columns.
        """
        is_float = np.asarray(data["is_float"], dtype=bool)
        length = len(is_float)
        arrays: Dict[str, np.ndarray] = {}
        for name, dtype in TRACE_COLUMNS:
            if name in data:
                column = np.asarray(data[name], dtype=np.dtype(dtype))
            elif name == "is_store":
                column = np.zeros(length, dtype=bool)
            elif name == "value_is_int":
                column = ~is_float
            else:
                raise ValueError(f"packed trace is missing column {name!r}")
            if column.ndim != 1:
                raise ValueError(f"column {name!r} is not 1-D")
            if len(column) != length:
                raise ValueError(
                    f"column {name!r} has {len(column)} rows, expected {length}"
                )
            arrays[name] = column
        return cls(**arrays)

    def select(self, indices: np.ndarray) -> "PackedTrace":
        """A new packed trace of the rows at ``indices`` (in that order)."""
        return PackedTrace(
            **{name: array[indices] for name, array in self.columns().items()}
        )

    # ------------------------------------------------------------------ #
    # Views                                                              #
    # ------------------------------------------------------------------ #

    def value_list(self) -> List[Number]:
        """Per-event values as native Python ints/floats (exact)."""
        ints = self.value_i.tolist()
        floats = self.value_f.tolist()
        flags = self.value_is_int.tolist()
        return [i if flag else f for i, f, flag in zip(ints, floats, flags)]

    def event_tuples(self) -> List[tuple]:
        """Events as ``(pc, addr, value, is_float, approximable, gap,
        is_store)`` tuples, in trace order.

        The replay hot-loop format: one list indexing per event instead of
        seven attribute reads on a dataclass, and values are native Python
        scalars rather than NumPy ones.
        """
        return list(
            zip(
                self.pc.tolist(),
                self.addr.tolist(),
                self.value_list(),
                self.is_float.tolist(),
                self.approximable.tolist(),
                self.gap.tolist(),
                self.is_store.tolist(),
            )
        )

    def thread_order(self) -> List[int]:
        """Thread ids in order of first appearance in the trace."""
        tids, first = np.unique(np.asarray(self.tid), return_index=True)
        return [int(tids[j]) for j in np.argsort(first, kind="stable")]

    def per_thread(self) -> Dict[int, "PackedTrace"]:
        """Split into per-thread packed streams, preserving order.

        Keys appear in order of first appearance, matching
        :meth:`Trace.per_thread`.
        """
        tid = np.asarray(self.tid)
        return {
            t: self.select(np.flatnonzero(tid == t)) for t in self.thread_order()
        }

    def per_core_indices(self, num_cores: int) -> Dict[int, np.ndarray]:
        """Row indices of each core's replay queue, vectorized.

        Replicates the full-system scheduling semantics exactly: threads
        are pinned ``tid % num_cores`` and, when several threads share a
        core, their *whole streams are concatenated* in thread
        first-appearance order (not interleaved in global order). Core
        keys also appear in first-appearance order.
        """
        tid = np.asarray(self.tid)
        buckets: Dict[int, List[np.ndarray]] = {}
        for t in self.thread_order():
            buckets.setdefault(t % num_cores, []).append(np.flatnonzero(tid == t))
        return {
            core: chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            for core, chunks in buckets.items()
        }

    def to_trace(self) -> "Trace":
        """Unpack to the object-list representation (lossless)."""
        events = list(
            map(
                LoadEvent,
                self.tid.tolist(),
                self.pc.tolist(),
                self.addr.tolist(),
                self.value_list(),
                self.is_float.tolist(),
                self.approximable.tolist(),
                self.gap.tolist(),
                self.is_store.tolist(),
            )
        )
        return Trace(events)


class Trace:
    """An ordered collection of :class:`LoadEvent`, with per-thread views."""

    def __init__(self, events: Optional[List[LoadEvent]] = None) -> None:
        self.events: List[LoadEvent] = list(events) if events else []

    def append(self, event: LoadEvent) -> None:
        """Add an event (in global program order)."""
        self.events.append(event)

    def per_thread(self) -> Dict[int, List[LoadEvent]]:
        """Split into per-thread streams, preserving order.

        One O(n) pass; consecutive events from the same thread (the
        common case — workloads issue bursts per thread) reuse the
        previous stream without a dict probe.
        """
        streams: Dict[int, List[LoadEvent]] = {}
        last_tid: Optional[int] = None
        append = None
        for event in self.events:
            tid = event.tid
            if tid != last_tid:
                stream = streams.get(tid)
                if stream is None:
                    stream = streams[tid] = []
                append = stream.append
                last_tid = tid
            append(event)
        return streams

    @property
    def total_instructions(self) -> int:
        """Loads plus recorded gaps across all threads."""
        return len(self.events) + sum(event.gap for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[LoadEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------ #
    # Packing                                                            #
    # ------------------------------------------------------------------ #

    def pack(self) -> PackedTrace:
        """The structure-of-arrays form of this trace (lossless).

        Values are stored in two columns (float and int) selected by
        their Python type so both datatypes round-trip exactly;
        ``PackedTrace.to_trace()`` inverts this method.
        """
        events = self.events
        value_is_int = [_is_int_value(e.value) for e in events]
        return PackedTrace(
            tid=np.array([e.tid for e in events], dtype=np.int32),
            pc=np.array([e.pc for e in events], dtype=np.int64),
            addr=np.array([e.addr for e in events], dtype=np.int64),
            value_f=np.array(
                [0.0 if flag else e.value for e, flag in zip(events, value_is_int)],
                dtype=np.float64,
            ),
            value_i=np.array(
                [int(e.value) if flag else 0 for e, flag in zip(events, value_is_int)],
                dtype=np.int64,
            ),
            value_is_int=np.array(value_is_int, dtype=bool),
            is_float=np.array([e.is_float for e in events], dtype=bool),
            approximable=np.array([e.approximable for e in events], dtype=bool),
            gap=np.array([e.gap for e in events], dtype=np.int64),
            is_store=np.array([e.is_store for e in events], dtype=bool),
        )

    # ------------------------------------------------------------------ #
    # Persistence                                                        #
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Serialise to a compressed ``.npz`` file.

        Phase-1 trace capture is the expensive step of the methodology;
        persisting traces lets phase-2 sweeps (and other machines) replay
        them without re-running the workload. The file holds the
        :data:`TRACE_COLUMNS` of :meth:`pack`, so both datatypes
        round-trip exactly.
        """
        np.savez_compressed(path, **self.pack().columns())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Deserialise a trace written by :meth:`save`.

        Files written before the ``value_is_int``/``is_store`` columns
        existed load with their historical semantics (value type from
        ``is_float``; no stores).
        """
        with np.load(path) as data:
            packed = PackedTrace.from_arrays({name: data[name] for name in data.files})
        return packed.to_trace()


class TraceRecorder:
    """Attachable sink that captures LoadEvents from a memory front-end.

    Front-ends call :meth:`on_load` for every load and :meth:`on_advance`
    for non-load instructions; the recorder tracks per-thread gaps.
    """

    def __init__(self, record_stores: bool = False) -> None:
        self.trace = Trace()
        self.record_stores = record_stores
        self._gaps: Dict[int, int] = {}

    def on_advance(self, tid: int, instructions: int) -> None:
        """Accumulate non-load instructions for ``tid``."""
        self._gaps[tid] = self._gaps.get(tid, 0) + instructions

    def on_store(self, tid: int, addr: int) -> None:
        """Record one store (only when ``record_stores`` is enabled);
        otherwise it is folded into the gap by the front-end."""
        gap = self._gaps.pop(tid, 0)
        self.trace.append(
            LoadEvent(
                tid, 0, addr, 0, is_float=False, approximable=False,
                gap=gap, is_store=True,
            )
        )

    def on_load(
        self,
        tid: int,
        pc: int,
        addr: int,
        value: Number,
        is_float: bool,
        approximable: bool,
    ) -> None:
        """Record one load, consuming the accumulated gap."""
        gap = self._gaps.pop(tid, 0)
        self.trace.append(
            LoadEvent(tid, pc, addr, value, is_float, approximable, gap)
        )
