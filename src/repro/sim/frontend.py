"""The memory front-end workloads program against.

Workloads allocate named regions from an :class:`AddressSpace`, then issue
``store`` / ``load`` / ``load_approx`` / ``advance`` calls against a
:class:`MemoryFrontend`. Two implementations exist:

* :class:`PreciseMemory` — a functional store with no microarchitecture;
  used to produce the reference (precise) output and instruction counts.
* :class:`repro.sim.tracesim.TraceSimulator` — models the L1 and the
  approximator and may clobber load values, exactly like the paper's Pin
  tool.

Because both implement the same interface, *the same workload code* runs
precisely or approximately; output error is measured by comparing the two
outputs with the workload's error metric.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Union

from repro.errors import AddressError, ConfigurationError
from repro.sim.trace import TraceRecorder

Number = Union[int, float]


class Region:
    """A named, contiguous allocation of fixed-size elements."""

    __slots__ = ("name", "base", "count", "itemsize")

    def __init__(self, name: str, base: int, count: int, itemsize: int) -> None:
        self.name = name
        self.base = base
        self.count = count
        self.itemsize = itemsize

    def addr(self, index: int) -> int:
        """Byte address of element ``index``.

        Raises:
            AddressError: for an out-of-bounds index.
        """
        if not 0 <= index < self.count:
            raise AddressError(
                f"index {index} out of range for region {self.name!r} "
                f"(count={self.count})"
            )
        return self.base + index * self.itemsize

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.count * self.itemsize

    def __repr__(self) -> str:
        return (
            f"Region({self.name!r}, base={self.base:#x}, count={self.count}, "
            f"itemsize={self.itemsize})"
        )


class AddressSpace:
    """A bump allocator handing out page-aligned regions.

    Regions are page-aligned so distinct arrays never share a cache block,
    which keeps the workloads' locality behaviour easy to reason about.
    """

    PAGE = 4096

    def __init__(self, base: int = 0x10000) -> None:
        self._next = base
        self._regions: Dict[str, Region] = {}

    def alloc(self, name: str, count: int, itemsize: int = 8) -> Region:
        """Allocate ``count`` elements of ``itemsize`` bytes under ``name``."""
        if count <= 0 or itemsize <= 0:
            raise ConfigurationError("count and itemsize must be positive")
        if name in self._regions:
            raise ConfigurationError(f"region {name!r} already allocated")
        region = Region(name, self._next, count, itemsize)
        size = count * itemsize
        self._next += (size + self.PAGE - 1) // self.PAGE * self.PAGE
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        """Look up a previously allocated region."""
        return self._regions[name]

    def regions(self):
        """All allocated regions (read-only view)."""
        return tuple(self._regions.values())


class MemoryFrontend(abc.ABC):
    """Interface between workloads and the simulated memory system.

    Subclasses implement :meth:`_serve_load`; this base class provides
    the value store, instruction accounting, thread tracking and optional
    trace recording shared by every implementation.
    """

    def __init__(self, recorder: Optional[TraceRecorder] = None) -> None:
        self.space = AddressSpace()
        self.values: Dict[int, Number] = {}
        self.recorder = recorder
        self.instructions = 0
        self._tid = 0

    # -- workload-facing API ------------------------------------------- #

    def set_thread(self, tid: int) -> None:
        """Switch the issuing thread (workloads run 4 logical threads)."""
        self._tid = tid

    @property
    def thread(self) -> int:
        """The currently issuing thread id."""
        return self._tid

    def advance(self, instructions: int = 1) -> None:
        """Account ``instructions`` non-memory instructions."""
        self.instructions += instructions
        if self.recorder is not None:
            self.recorder.on_advance(self._tid, instructions)

    def store(self, addr: int, value: Number, streaming: bool = False) -> None:
        """Write ``value`` to ``addr`` (counts one instruction).

        ``streaming=True`` models a non-temporal store (or a DMA write,
        e.g. a camera frame arriving): the data bypasses the cache and any
        stale resident copy is invalidated, so subsequent loads miss.
        """
        self.instructions += 1
        self.values[addr] = value
        if streaming:
            self._serve_store_streaming(addr)
        else:
            self._serve_store(addr)
        if self.recorder is not None:
            if getattr(self.recorder, "record_stores", False):
                self.recorder.on_store(self._tid, addr)
            else:
                self.recorder.on_advance(self._tid, 1)

    def load(self, pc: int, addr: int) -> Number:
        """A precise load — never approximated, always returns the true value
        (but still exercises the cache in simulating front-ends)."""
        return self._issue(pc, addr, approximable=False, is_float=True)

    def load_approx(self, pc: int, addr: int, is_float: bool = True) -> Number:
        """A load annotated approximate (the EnerJ-style ISA hint of
        Section IV); simulating front-ends may clobber its value."""
        return self._issue(pc, addr, approximable=True, is_float=is_float)

    # -- shared mechanics ----------------------------------------------- #

    def _issue(self, pc: int, addr: int, approximable: bool, is_float: bool) -> Number:
        self.instructions += 1
        try:
            actual = self.values[addr]
        except KeyError:
            raise AddressError(
                f"load from unwritten address {addr:#x} (pc={pc:#x})"
            ) from None
        returned = self._serve_load(pc, addr, actual, approximable, is_float)
        if self.recorder is not None:
            self.recorder.on_load(self._tid, pc, addr, actual, is_float, approximable)
        return returned

    @abc.abstractmethod
    def _serve_load(
        self, pc: int, addr: int, actual: Number, approximable: bool, is_float: bool
    ) -> Number:
        """Model the load and return the value the core receives."""

    def _serve_store(self, addr: int) -> None:
        """Model the store (default: functional only)."""

    def _serve_store_streaming(self, addr: int) -> None:
        """Model a non-temporal store (default: same as a plain store)."""
        self._serve_store(addr)


class PreciseMemory(MemoryFrontend):
    """The reference front-end: no cache, no approximation, true values."""

    def _serve_load(
        self, pc: int, addr: int, actual: Number, approximable: bool, is_float: bool
    ) -> Number:
        del pc, approximable, is_float
        return actual
