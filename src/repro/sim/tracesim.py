"""The phase-1 trace-driven simulator (Pin + cache-simulator substitute).

Models a private L1 data cache and one of four techniques on its miss
stream:

* ``PRECISE``  — conventional cache: every miss fetches its block (1:1).
* ``LVA``     — the load value approximator: approximable misses may be
  served with generated values, and the approximation degree may cancel
  the fetch entirely.
* ``LVP``     — idealized load value prediction: every miss fetches; a miss
  counts as covered when the actual value appears in the entry's LHB.
* ``PREFETCH`` — GHB prefetcher: every miss fetches and additionally issues
  up to ``degree`` prefetches (applied to all data, not just annotated).

The simulator implements :class:`~repro.sim.frontend.MemoryFrontend`, so
workloads run against it unmodified; with ``LVA`` the values returned to the
workload are clobbered, which is how output error is measured (Section V-A).
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.core.approximator import DelayQueue, LoadValueApproximator
from repro.core.config import ApproximatorConfig
from repro.faults.memory import build_memory_model
from repro.core.predictor import IdealizedLoadValuePredictor
from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.prefetch.base import Prefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.sim import kernels
from repro.sim.frontend import MemoryFrontend
from repro.sim.stats import SimulationStats
from repro.sim.trace import PackedTrace, Trace, TraceRecorder
from repro.telemetry import sim_hook

Number = Union[int, float]

#: L1 configuration of the design-space phase: 64 KB private data cache.
PHASE1_L1 = CacheConfig(size_bytes=64 * 1024, associativity=8, block_bytes=64, latency=1)


class Mode(enum.Enum):
    """Which technique observes the L1 miss stream."""

    PRECISE = "precise"
    LVA = "lva"
    LVP = "lvp"
    PREFETCH = "prefetch"


class TraceSimulator(MemoryFrontend):
    """L1 + technique simulator behind the workload memory interface."""

    def __init__(
        self,
        mode: Mode = Mode.PRECISE,
        approximator_config: Optional[ApproximatorConfig] = None,
        l1_config: CacheConfig = PHASE1_L1,
        prefetcher: Optional[Prefetcher] = None,
        prefetch_degree: int = 4,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(recorder=recorder)
        self.mode = mode
        self.stats = SimulationStats()
        self.l1 = SetAssociativeCache(l1_config, name="L1D")
        self.approximator: Optional[LoadValueApproximator] = None
        self.predictor: Optional[IdealizedLoadValuePredictor] = None
        self.prefetcher: Optional[Prefetcher] = None
        self._delay: Optional[DelayQueue] = None
        # Injected memory faults (None in the overwhelmingly common clean
        # case; the miss path pays one is-None test). Built per simulator
        # so the seeded fault pattern is deterministic per run.
        self._mem_faults = build_memory_model()
        # Telemetry hook (None in the common disabled case; the hot path
        # pays one is-None test per load, same idiom as the fault model).
        self._tel = sim_hook()

        config = approximator_config or ApproximatorConfig()
        if mode is Mode.LVA:
            self.approximator = LoadValueApproximator(config)
            self._delay = DelayQueue(config.value_delay)
        elif mode is Mode.LVP:
            self.predictor = IdealizedLoadValuePredictor(config)
            self._delay = DelayQueue(config.value_delay)
        elif mode is Mode.PREFETCH:
            self.prefetcher = prefetcher or GHBPrefetcher(
                degree=prefetch_degree, block_bytes=l1_config.block_bytes
            )
        elif mode is not Mode.PRECISE:
            raise ConfigurationError(f"unknown mode {mode!r}")

    # ------------------------------------------------------------------ #
    # MemoryFrontend implementation                                       #
    # ------------------------------------------------------------------ #

    def _serve_load(
        self, pc: int, addr: int, actual: Number, approximable: bool, is_float: bool
    ) -> Number:
        self.stats.loads += 1
        self.stats.instructions = self.instructions
        if approximable:
            self.stats.approx_loads += 1
            self.stats.static_approx_pcs.add(pc)
        if self._tel is not None:
            self._tel.on_load(self.stats)

        self._tick_value_delay()

        if self.l1.probe(addr):
            return actual

        self.stats.raw_misses += 1

        # On a miss the value comes from the memory hierarchy; an injected
        # fault model may corrupt it in flight (silent data corruption).
        # Only approximable data is exposed: pointers and control data live
        # in reliable storage (the paper's EnerJ-style annotation separates
        # exactly these), so a corrupted value degrades output quality
        # rather than crashing the modelled program.
        if approximable and self._mem_faults is not None:
            actual, flipped = self._mem_faults.corrupt_value(actual, is_float)
            if flipped:
                self.stats.value_bit_flips += 1
                if self._tel is not None:
                    self._tel.on_fault("value_bit_flip", addr)

        if self.mode is Mode.PREFETCH:
            self._fetch(addr)
            for candidate in self.prefetcher.on_miss(pc, addr):
                if not self.l1.contains(candidate):
                    self._fetch(candidate, prefetched=True)
            return actual

        if self.mode is Mode.LVA and approximable:
            return self._serve_lva_miss(pc, addr, actual, is_float)

        if self.mode is Mode.LVP and approximable:
            decision = self.predictor.on_miss(pc, is_float)
            if self._fetch(addr):  # LVP must always validate: 1:1 fetches
                self._delay.push(decision.token, actual)
            return actual  # rollbacks restore precision

        self._fetch(addr)
        return actual

    def _serve_lva_miss(
        self, pc: int, addr: int, actual: Number, is_float: bool
    ) -> Number:
        decision = self.approximator.on_miss(pc, is_float)
        if self._tel is not None:
            self._tel.on_decision(pc, addr, decision.approximated, decision.fetch)
        if decision.fetch:
            # A dropped fetch means the block never arrives: no training.
            if self._fetch(addr):
                self._delay.push(decision.token, actual)
        else:
            self.stats.fetches_avoided += 1
        if decision.approximated:
            self.stats.covered_misses += 1
            return decision.value
        return actual

    def _serve_store(self, addr: int) -> None:
        self.stats.stores += 1
        # Write-no-allocate: a store miss goes straight to the next level
        # (store misses are off the critical path, Section V-A) and does not
        # fetch a block; a store hit just dirties the resident block.
        if self.l1.contains(addr):
            self.l1.probe(addr, is_write=True)

    def _serve_store_streaming(self, addr: int) -> None:
        self.stats.stores += 1
        # Non-temporal/DMA write: the cached copy (if any) is stale now.
        self.l1.invalidate(addr)

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #

    def _tick_value_delay(self) -> None:
        if self._delay is None:
            return
        for token, actual in self._delay.tick():
            self._train(token, actual)

    def _train(self, token, actual: Number) -> None:
        if self.mode is Mode.LVA:
            self.approximator.train(token, actual)
        else:  # LVP: correctness is resolved when the block arrives
            if self.predictor.train(token, actual):
                self.stats.covered_misses += 1

    def _fetch(self, addr: int, prefetched: bool = False) -> bool:
        """Fetch a block into the L1; False when an injected fault drops it."""
        if self._mem_faults is not None and self._mem_faults.drop_fetch():
            self.stats.fetches_dropped += 1
            if self._tel is not None:
                self._tel.on_fault("fetch_drop", addr)
            return False
        self.stats.fetches += 1
        if prefetched:
            self.stats.prefetch_fetches += 1
        self.l1.fill(addr, prefetched=prefetched)
        return True

    # ------------------------------------------------------------------ #
    # Trace replay                                                       #
    # ------------------------------------------------------------------ #

    def replay(self, trace: Union[Trace, PackedTrace]) -> SimulationStats:
        """Drive the simulator from a captured trace instead of a live
        workload; returns the final stats (:meth:`finish` is applied).

        Three replay paths exist, selected by ``REPRO_REPLAY_KERNEL``
        (see :mod:`repro.sim.kernels`):

        * ``object`` — the reference interpreter over event objects;
        * ``packed`` — the scalar interpreter over packed column tuples
          (one tuple unpack per event, no dataclass dispatch);
        * ``vector`` — the batched numpy kernels (the default whenever
          the configuration is eligible; otherwise the replay downgrades
          to ``packed``, warning when the reason is dynamic).

        All three are bit-identical by contract (the equality pins live in
        ``tests/sim/test_kernels.py`` and
        ``tests/fullsystem/test_packed_replay.py``).

        Replay is *open loop*: recorded values are fed to the technique
        exactly as captured, so an LVA run cannot steer the address
        stream the way a live (closed-loop) execution does. It measures
        cache/approximator behaviour on a fixed load stream — the same
        caveat as every trace-driven simulator, including the paper's
        phase-2 — and is therefore not a substitute for
        :func:`repro.experiments.common.run_technique`'s live phase-1
        runs, whose output error depends on the clobbered values.
        """
        path = kernels.select_path(self)
        if path == "vector":
            packed = trace.pack() if isinstance(trace, Trace) else trace
            kernels.replay_vector(self, packed)
            return self.finish()
        if path == "object":
            source = trace.to_trace() if isinstance(trace, PackedTrace) else trace
            events = (
                (e.pc, e.addr, e.value, e.is_float, e.approximable, e.gap, e.is_store)
                for e in source.events
            )
        else:  # packed
            packed = trace.pack() if isinstance(trace, Trace) else trace
            events = iter(packed.event_tuples())
        instructions = self.instructions
        serve_load = self._serve_load
        serve_store = self._serve_store
        for pc, addr, value, is_float, approximable, gap, is_store in events:
            instructions += gap + 1
            self.instructions = instructions
            if is_store:
                serve_store(addr)
            else:
                serve_load(pc, addr, value, approximable, is_float)
        return self.finish()

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def finish(self) -> SimulationStats:
        """Flush in-flight trainings and return the final statistics.

        Must be called once after the workload completes; pending
        value-delayed trainings are applied so LVP coverage and LVA
        confidence are fully accounted.
        """
        if self._delay is not None:
            for token, actual in self._delay.drain():
                self._train(token, actual)
        self.stats.instructions = self.instructions
        if self._tel is not None:
            self._tel.finish(self.stats)
        return self.stats
