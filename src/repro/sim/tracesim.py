"""The phase-1 trace-driven simulator (Pin + cache-simulator substitute).

Models a private L1 data cache and one technique on its miss stream:

* ``PRECISE``  — conventional cache: every miss fetches its block (1:1).
* ``LVA``     — the load value approximator: approximable misses may be
  served with generated values, and the approximation degree may cancel
  the fetch entirely.
* ``LVP``     — idealized load value prediction: every miss fetches; a miss
  counts as covered when the actual value appears in the entry's LHB.
* ``PREFETCH`` — GHB prefetcher: every miss fetches and additionally issues
  up to ``degree`` prefetches (applied to all data, not just annotated).
* ``PREDICTOR`` — any registered miss predictor (:mod:`repro.predictors`),
  resolved by name from ``config.predictor`` (or the ``REPRO_PREDICTOR``
  override). Resolving ``"lva"``/``"lvp"`` builds the exact objects the
  fixed modes build, so those runs are bit-identical to ``LVA``/``LVP``.

The simulator implements :class:`~repro.sim.frontend.MemoryFrontend`, so
workloads run against it unmodified; with ``LVA`` the values returned to the
workload are clobbered, which is how output error is measured (Section V-A).
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.core.approximator import DelayQueue, LoadValueApproximator
from repro.core.config import ApproximatorConfig
from repro.faults.memory import build_memory_model
from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.predictors import registry as predictor_registry
from repro.predictors.lvp import IdealizedLoadValuePredictor
from repro.prefetch.base import Prefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.sim import kernels
from repro.sim.frontend import MemoryFrontend
from repro.sim.stats import SimulationStats
from repro.sim.trace import PackedTrace, Trace, TraceRecorder
from repro.telemetry import sim_hook

Number = Union[int, float]

#: L1 configuration of the design-space phase: 64 KB private data cache.
PHASE1_L1 = CacheConfig(size_bytes=64 * 1024, associativity=8, block_bytes=64, latency=1)


class Mode(enum.Enum):
    """Which technique observes the L1 miss stream."""

    PRECISE = "precise"
    LVA = "lva"
    LVP = "lvp"
    PREFETCH = "prefetch"
    #: Registry-resolved predictor (config.predictor / REPRO_PREDICTOR).
    PREDICTOR = "predictor"


class TraceSimulator(MemoryFrontend):
    """L1 + technique simulator behind the workload memory interface."""

    def __init__(
        self,
        mode: Mode = Mode.PRECISE,
        approximator_config: Optional[ApproximatorConfig] = None,
        l1_config: CacheConfig = PHASE1_L1,
        prefetcher: Optional[Prefetcher] = None,
        prefetch_degree: int = 4,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(recorder=recorder)
        self.mode = mode
        self.stats = SimulationStats()
        self.l1 = SetAssociativeCache(l1_config, name="L1D")
        self.approximator: Optional[LoadValueApproximator] = None
        self.predictor: Optional[IdealizedLoadValuePredictor] = None
        #: Any other registry predictor (scalar MissPredictor contract).
        self.generic_predictor: Optional[object] = None
        #: Registry name of the technique driven on misses (None = none).
        self.predictor_name: Optional[str] = None
        self.prefetcher: Optional[Prefetcher] = None
        self._delay: Optional[DelayQueue] = None
        # Injected memory faults (None in the overwhelmingly common clean
        # case; the miss path pays one is-None test). Built per simulator
        # so the seeded fault pattern is deterministic per run.
        self._mem_faults = build_memory_model()
        # Telemetry hook (None in the common disabled case; the hot path
        # pays one is-None test per load, same idiom as the fault model).
        self._tel = sim_hook()

        config = approximator_config or ApproximatorConfig()
        if mode in (Mode.LVA, Mode.LVP, Mode.PREDICTOR):
            # All technique modes resolve through the registry. The fixed
            # modes pin their historical names; PREDICTOR honours the env
            # override, then config.predictor. Registry "lva"/"lvp" build
            # the same classes as ever, so dispatch below stays on the
            # bit-identical hard-coded paths for them.
            name = predictor_registry.resolve_name(mode.value, config)
            technique = predictor_registry.create(name, config)
            self.predictor_name = name
            if isinstance(technique, LoadValueApproximator):
                self.approximator = technique
            elif isinstance(technique, IdealizedLoadValuePredictor):
                self.predictor = technique
            else:
                self.generic_predictor = technique
            self._delay = DelayQueue(config.value_delay)
        elif mode is Mode.PREFETCH:
            self.prefetcher = prefetcher or GHBPrefetcher(
                degree=prefetch_degree, block_bytes=l1_config.block_bytes
            )
        elif mode is not Mode.PRECISE:
            raise ConfigurationError(f"unknown mode {mode!r}")

    # ------------------------------------------------------------------ #
    # MemoryFrontend implementation                                       #
    # ------------------------------------------------------------------ #

    def _serve_load(
        self, pc: int, addr: int, actual: Number, approximable: bool, is_float: bool
    ) -> Number:
        self.stats.loads += 1
        self.stats.instructions = self.instructions
        if approximable:
            self.stats.approx_loads += 1
            self.stats.static_approx_pcs.add(pc)
        if self._tel is not None:
            self._tel.on_load(self.stats)

        self._tick_value_delay()

        if self.l1.probe(addr):
            return actual

        self.stats.raw_misses += 1

        # On a miss the value comes from the memory hierarchy; an injected
        # fault model may corrupt it in flight (silent data corruption).
        # Only approximable data is exposed: pointers and control data live
        # in reliable storage (the paper's EnerJ-style annotation separates
        # exactly these), so a corrupted value degrades output quality
        # rather than crashing the modelled program.
        if approximable and self._mem_faults is not None:
            actual, flipped = self._mem_faults.corrupt_value(actual, is_float)
            if flipped:
                self.stats.value_bit_flips += 1
                if self._tel is not None:
                    self._tel.on_fault("value_bit_flip", addr)

        if self.prefetcher is not None:
            self._fetch(addr)
            for candidate in self.prefetcher.on_miss(pc, addr):
                if not self.l1.contains(candidate):
                    self._fetch(candidate, prefetched=True)
            return actual

        if approximable:
            if self.approximator is not None:
                return self._serve_lva_miss(pc, addr, actual, is_float)

            if self.predictor is not None:
                decision = self.predictor.on_miss(pc, is_float)
                if self._fetch(addr):  # LVP must always validate: 1:1 fetches
                    self._delay.push(decision.token, actual)
                return actual  # rollbacks restore precision

            if self.generic_predictor is not None:
                return self._serve_generic_miss(pc, addr, actual, is_float)

        self._fetch(addr)
        return actual

    def _serve_lva_miss(
        self, pc: int, addr: int, actual: Number, is_float: bool
    ) -> Number:
        decision = self.approximator.on_miss(pc, is_float)
        if self._tel is not None:
            self._tel.on_decision(pc, addr, decision.approximated, decision.fetch)
        if decision.fetch:
            # A dropped fetch means the block never arrives: no training.
            if self._fetch(addr):
                self._delay.push(decision.token, actual)
        else:
            self.stats.fetches_avoided += 1
        if decision.approximated:
            self.stats.covered_misses += 1
            return decision.value
        return actual

    def _serve_generic_miss(
        self, pc: int, addr: int, actual: Number, is_float: bool
    ) -> Number:
        """Drive a registry predictor through the scalar MissPredictor
        contract (see :mod:`repro.predictors.base`).

        A returned value covers the miss at decision time (LVA-style); a
        value-less decision proceeds precisely, and its training may still
        report the miss as covered (rollback-style, like LVP/CLP).
        """
        decision = self.generic_predictor.on_miss(pc, is_float, addr)
        if self._tel is not None:
            self._tel.on_decision(pc, addr, decision.value is not None, decision.fetch)
        if decision.fetch:
            # A dropped fetch means the block never arrives: no training.
            if self._fetch(addr) and decision.token is not None:
                self._delay.push(decision.token, actual)
        else:
            self.stats.fetches_avoided += 1
        if decision.value is not None:
            self.stats.covered_misses += 1
            return decision.value
        return actual

    def _serve_store(self, addr: int) -> None:
        self.stats.stores += 1
        # Write-no-allocate: a store miss goes straight to the next level
        # (store misses are off the critical path, Section V-A) and does not
        # fetch a block; a store hit just dirties the resident block.
        if self.l1.contains(addr):
            self.l1.probe(addr, is_write=True)

    def _serve_store_streaming(self, addr: int) -> None:
        self.stats.stores += 1
        # Non-temporal/DMA write: the cached copy (if any) is stale now.
        self.l1.invalidate(addr)

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #

    def _tick_value_delay(self) -> None:
        if self._delay is None:
            return
        for token, actual in self._delay.tick():
            self._train(token, actual)

    def _train(self, token, actual: Number) -> None:
        if self.approximator is not None:
            self.approximator.train(token, actual)
            return
        # Rollback techniques: coverage is resolved when the block arrives.
        technique = self.predictor if self.predictor is not None else self.generic_predictor
        if technique.train(token, actual):
            self.stats.covered_misses += 1

    def _fetch(self, addr: int, prefetched: bool = False) -> bool:
        """Fetch a block into the L1; False when an injected fault drops it."""
        if self._mem_faults is not None and self._mem_faults.drop_fetch():
            self.stats.fetches_dropped += 1
            if self._tel is not None:
                self._tel.on_fault("fetch_drop", addr)
            return False
        self.stats.fetches += 1
        if prefetched:
            self.stats.prefetch_fetches += 1
        self.l1.fill(addr, prefetched=prefetched)
        return True

    # ------------------------------------------------------------------ #
    # Trace replay                                                       #
    # ------------------------------------------------------------------ #

    def replay(self, trace: Union[Trace, PackedTrace]) -> SimulationStats:
        """Drive the simulator from a captured trace instead of a live
        workload; returns the final stats (:meth:`finish` is applied).

        Three replay paths exist, selected by ``REPRO_REPLAY_KERNEL``
        (see :mod:`repro.sim.kernels`):

        * ``object`` — the reference interpreter over event objects;
        * ``packed`` — the scalar interpreter over packed column tuples
          (one tuple unpack per event, no dataclass dispatch);
        * ``vector`` — the batched numpy kernels (the default whenever
          the configuration is eligible; otherwise the replay downgrades
          to ``packed``, warning when the reason is dynamic).

        All three are bit-identical by contract (the equality pins live in
        ``tests/sim/test_kernels.py`` and
        ``tests/fullsystem/test_packed_replay.py``).

        Replay is *open loop*: recorded values are fed to the technique
        exactly as captured, so an LVA run cannot steer the address
        stream the way a live (closed-loop) execution does. It measures
        cache/approximator behaviour on a fixed load stream — the same
        caveat as every trace-driven simulator, including the paper's
        phase-2 — and is therefore not a substitute for
        :func:`repro.experiments.common.run_technique`'s live phase-1
        runs, whose output error depends on the clobbered values.
        """
        path = kernels.select_path(self, len(trace))
        if path == "vector":
            packed = trace.pack() if isinstance(trace, Trace) else trace
            kernels.replay_vector(self, packed)
            return self.finish()
        if path == "object":
            source = trace.to_trace() if isinstance(trace, PackedTrace) else trace
            events = (
                (e.pc, e.addr, e.value, e.is_float, e.approximable, e.gap, e.is_store)
                for e in source.events
            )
        else:  # packed
            packed = trace.pack() if isinstance(trace, Trace) else trace
            events = iter(packed.event_tuples())
        instructions = self.instructions
        serve_load = self._serve_load
        serve_store = self._serve_store
        for pc, addr, value, is_float, approximable, gap, is_store in events:
            instructions += gap + 1
            self.instructions = instructions
            if is_store:
                serve_store(addr)
            else:
                serve_load(pc, addr, value, approximable, is_float)
        return self.finish()

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def finish(self) -> SimulationStats:
        """Flush in-flight trainings and return the final statistics.

        Must be called once after the workload completes; pending
        value-delayed trainings are applied so LVP coverage and LVA
        confidence are fully accounted.
        """
        if self._delay is not None:
            for token, actual in self._delay.drain():
                self._train(token, actual)
        self.stats.instructions = self.instructions
        if self._tel is not None:
            self._tel.finish(self.stats)
        return self.stats
