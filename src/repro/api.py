"""`repro.api` — the supported programmatic entry point.

One fluent builder covers the whole phase-1 methodology (precise
baseline, technique run, output error, telemetry), and small helpers
cover the rest of the library surface::

    from repro.api import Simulation, lva

    result = (
        Simulation.builder()
        .workload("canneal", small=True)
        .approximator(lva(window=0.05, degree=4))
        .compare_precise()
        .run()
    )
    print(result.mpki, result.coverage, result.output_error)

Everything the builder produces is a frozen :class:`RunResult` — plain
data, safe to stash, compare and serialize. The helpers:

* :func:`lva` — an :class:`~repro.core.config.ApproximatorConfig` with
  the paper's short parameter names (``window``, ``degree``, ``ghb``);
* :func:`build_approximator` — a bare registry predictor (the paper's
  :class:`~repro.core.approximator.LoadValueApproximator` by default)
  to drive by hand;
* :func:`audit` — annotation audit of a workload (Section IV);
* :func:`run_experiment` — any table/figure by runner name, through the
  :class:`~repro.experiments.common.ExperimentDriver` protocol;
* :func:`replay` — a captured trace through the phase-2 full-system
  platform.

The old per-module entry points (``fig4.run`` and friends) still work
but emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.core.config import ApproximatorConfig
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.predictors.base import MissPredictor
    from repro.workloads.base import Workload

__all__ = [
    "RunResult",
    "Simulation",
    "SimulationBuilder",
    "audit",
    "build_approximator",
    "lva",
    "replay",
    "run_experiment",
]


#: Short parameter names (as in :func:`lva`) -> ApproximatorConfig fields.
_SHORT_NAMES = {
    "window": "confidence_window",
    "degree": "approximation_degree",
    "ghb": "ghb_size",
    "lhb": "lhb_size",
}


def lva(
    *,
    window: Optional[float] = None,
    degree: Optional[int] = None,
    ghb: Optional[int] = None,
    lhb: Optional[int] = None,
    table_entries: Optional[int] = None,
    value_delay: Optional[int] = None,
    mantissa_drop_bits: Optional[int] = None,
    compute_fn: Optional[str] = None,
    predictor: Optional[str] = None,
    **extra: object,
) -> ApproximatorConfig:
    """An approximator config using the paper's short names.

    ``window`` is the confidence window W, ``degree`` the approximation
    degree, ``ghb``/``lhb`` the history-buffer sizes, ``predictor`` the
    registry name a ``Mode.PREDICTOR`` run resolves. Any other
    :class:`~repro.core.config.ApproximatorConfig` field can be passed
    by its full name through ``extra``.
    """
    kwargs: Dict[str, object] = dict(extra)
    if window is not None:
        kwargs["confidence_window"] = window
    if degree is not None:
        kwargs["approximation_degree"] = degree
    if ghb is not None:
        kwargs["ghb_size"] = ghb
    if lhb is not None:
        kwargs["lhb_size"] = lhb
    if table_entries is not None:
        kwargs["table_entries"] = table_entries
    if value_delay is not None:
        kwargs["value_delay"] = value_delay
    if mantissa_drop_bits is not None:
        kwargs["mantissa_drop_bits"] = mantissa_drop_bits
    if compute_fn is not None:
        kwargs["compute_fn"] = compute_fn
    if predictor is not None:
        kwargs["predictor"] = predictor
    try:
        return ApproximatorConfig(**kwargs)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ConfigurationError(f"lva(): {exc}") from exc


def build_approximator(
    config: Optional[ApproximatorConfig] = None,
) -> "MissPredictor":
    """A bare predictor to drive by hand (``on_miss``/``train``).

    Routed through the registry: ``config.predictor`` (default
    ``"lva"``) names which entry is built, so
    ``build_approximator(lva(predictor="clp"))`` hands back a
    :class:`~repro.predictors.clp.CacheLevelPredictor` and the bare
    default remains the paper's
    :class:`~repro.core.approximator.LoadValueApproximator`.
    """
    from repro import predictors

    config = config or ApproximatorConfig()
    return predictors.create(config.predictor, config)


@dataclass(frozen=True)
class RunResult:
    """One simulated run, frozen: metrics, raw stats, outputs.

    ``output_error`` is only present when the run was built with
    :meth:`SimulationBuilder.compare_precise`; ``trace`` only with
    :meth:`SimulationBuilder.record_trace`; ``metrics`` holds the
    telemetry registry snapshot when telemetry was enabled (empty
    otherwise).
    """

    workload: str
    mode: str
    seed: int
    instructions: int
    mpki: float
    raw_mpki: float
    coverage: float
    fetches_per_ki: float
    #: Registry name of the predictor that drove the run (``"lva"``,
    #: ``"clp"``, ...); None for precise/prefetch runs.
    predictor: Optional[str] = None
    output_error: Optional[float] = None
    stats: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    output: object = None
    precise_output: object = None
    trace: object = None

    def summary(self) -> str:
        """One line, the way the figures report a run.

        Registry runs name their predictor (``canneal/predictor[clp]``)
        so cross-predictor comparisons stay distinguishable in logs.
        """
        technique = self.mode
        if self.predictor is not None and self.predictor != self.mode:
            technique = f"{self.mode}[{self.predictor}]"
        text = (
            f"{self.workload}/{technique}: mpki={self.mpki:.3f} "
            f"coverage={self.coverage:.1%} fetches/KI={self.fetches_per_ki:.3f}"
        )
        if self.output_error is not None:
            text += f" output-error={self.output_error:.2%}"
        return text


class SimulationBuilder:
    """Fluent configuration for one phase-1 simulation run."""

    def __init__(self) -> None:
        self._workload: object = None
        self._params: Optional[dict] = None
        self._small = False
        self._mode_name = "precise"
        self._config: Optional[ApproximatorConfig] = None
        self._prefetch_degree = 4
        self._seed = 0
        self._compare = False
        self._record = False

    # -- what to run ----------------------------------------------------- #

    def workload(
        self,
        workload: object,
        params: Optional[dict] = None,
        small: bool = False,
    ) -> "SimulationBuilder":
        """The application: a registry name or a Workload instance."""
        self._workload = workload
        self._params = params
        self._small = small
        return self

    def seed(self, seed: int) -> "SimulationBuilder":
        """The workload input seed (default 0)."""
        self._seed = int(seed)
        return self

    # -- which technique ------------------------------------------------- #

    def approximator(
        self, config: Optional[ApproximatorConfig] = None
    ) -> "SimulationBuilder":
        """Serve approximable misses with LVA (see :func:`lva`)."""
        self._mode_name = "lva"
        self._config = config
        return self

    def predictor(
        self,
        name: object = None,
        config: Optional[ApproximatorConfig] = None,
        **overrides: object,
    ) -> "SimulationBuilder":
        """Serve approximable misses with a registry predictor by name.

        ``name`` is a :mod:`repro.predictors` registry name (``"lva"``,
        ``"lvp"``, ``"clp"``, ``"hybrid"``, ...); ``overrides`` take the
        short parameter names of :func:`lva` and are applied on top of
        ``config`` (or the baseline). Unknown names raise immediately,
        listing what is registered::

            Simulation.builder().workload("canneal").predictor("clp").run()

        The pre-registry forms — ``predictor()`` toggling the idealized
        LVP on, or a positional :class:`ApproximatorConfig` — still work
        but emit :class:`DeprecationWarning`; call ``predictor("lvp")``
        instead.
        """
        if isinstance(name, str):
            from repro import predictors

            predictors.get_info(name)  # unknown names fail loudly here
            base = config if config is not None else ApproximatorConfig()
            expanded = {_SHORT_NAMES.get(k, k): v for k, v in overrides.items()}
            try:
                self._config = base.with_overrides(predictor=name, **expanded)
            except TypeError as exc:
                raise ConfigurationError(f"predictor(): {exc}") from exc
            self._mode_name = "predictor"
            return self
        if name is not None and not isinstance(name, ApproximatorConfig):
            raise ConfigurationError(
                f"predictor() wants a registry name, got {name!r}"
            )
        warnings.warn(
            "SimulationBuilder.predictor() without a registry name is "
            'deprecated; call predictor("lvp") for the idealized LVP '
            "baseline",
            DeprecationWarning,
            stacklevel=2,
        )
        self._mode_name = "lvp"
        self._config = name if isinstance(name, ApproximatorConfig) else config
        return self

    def prefetcher(self, degree: int = 4) -> "SimulationBuilder":
        """The GHB-prefetcher baseline at the given degree."""
        self._mode_name = "prefetch"
        self._prefetch_degree = int(degree)
        return self

    def precise(self) -> "SimulationBuilder":
        """Conventional cache, no technique (the default)."""
        self._mode_name = "precise"
        return self

    # -- what to measure -------------------------------------------------- #

    def compare_precise(self, enabled: bool = True) -> "SimulationBuilder":
        """Also run the precise baseline and report the output error."""
        self._compare = enabled
        return self

    def record_trace(self, enabled: bool = True) -> "SimulationBuilder":
        """Record the load trace (for phase-2 replay; see :func:`replay`)."""
        self._record = enabled
        return self

    def telemetry(
        self,
        trace: Optional[Union[str, Path]] = None,
        snapshot_interval: Optional[int] = None,
        sample: Optional[int] = None,
    ) -> "SimulationBuilder":
        """Enable the :mod:`repro.telemetry` subsystem for this process."""
        from repro import telemetry as _telemetry

        _telemetry.configure(
            on=True,
            trace=trace,
            snapshot_interval=snapshot_interval,
            sample=sample,
        )
        return self

    # -- execution --------------------------------------------------------- #

    def build(self) -> "Simulation":
        """Validate and freeze the configuration."""
        if self._workload is None:
            raise ConfigurationError(
                "Simulation.builder(): call .workload(...) before .build()/.run()"
            )
        return Simulation(self)

    def run(self) -> RunResult:
        """Build and execute in one step."""
        return self.build().run()


class Simulation:
    """A configured run; :meth:`run` executes it and returns the result."""

    def __init__(self, builder: SimulationBuilder) -> None:
        self._b = builder

    @staticmethod
    def builder() -> SimulationBuilder:
        """Start a fluent configuration chain."""
        return SimulationBuilder()

    def _instantiate(self) -> "Workload":
        from repro.workloads.base import Workload
        from repro.workloads.registry import get_workload

        spec = self._b._workload
        if isinstance(spec, str):
            return get_workload(spec, params=self._b._params, small=self._b._small)
        if isinstance(spec, Workload):
            return spec
        if isinstance(spec, type) and issubclass(spec, Workload):
            return spec(self._b._params)
        raise ConfigurationError(
            f"workload must be a registry name or Workload, got {spec!r}"
        )

    def run(self) -> RunResult:
        """Execute the configured run (plus baseline, when requested)."""
        from repro import telemetry as _telemetry
        from repro.sim.frontend import PreciseMemory
        from repro.sim.trace import TraceRecorder
        from repro.sim.tracesim import Mode, TraceSimulator

        b = self._b
        workload = self._instantiate()
        mode = Mode(b._mode_name)

        precise_output = None
        if b._compare:
            # Workload.execute() seeds a fresh RNG per call, so the same
            # instance replays identically for the baseline.
            precise_output = workload.execute(PreciseMemory(), b._seed)

        recorder = TraceRecorder() if b._record else None
        sim = TraceSimulator(
            mode,
            approximator_config=b._config,
            prefetch_degree=b._prefetch_degree,
            recorder=recorder,
        )
        output = workload.execute(sim, b._seed)
        stats = sim.finish()

        output_error = None
        if b._compare:
            output_error = workload.output_error(precise_output, output)

        metrics: Dict[str, float] = {}
        if _telemetry.enabled():
            metrics = _telemetry.metrics().snapshot()

        return RunResult(
            workload=getattr(workload, "name", type(workload).__name__),
            mode=mode.value,
            seed=b._seed,
            predictor=sim.predictor_name,
            instructions=stats.instructions,
            mpki=stats.mpki,
            raw_mpki=stats.raw_mpki,
            coverage=stats.coverage,
            fetches_per_ki=stats.fetches_per_kilo_instruction,
            output_error=output_error,
            stats=stats.as_dict(),
            metrics=metrics,
            output=output,
            precise_output=precise_output,
            trace=recorder.trace if recorder is not None else None,
        )


def audit(
    workload: object,
    params: Optional[dict] = None,
    small: bool = False,
    seed: int = 0,
) -> "AuditReport":
    """Audit a workload's approximable annotations (Section IV)."""
    from repro.annotations import audit_workload
    from repro.workloads.base import Workload
    from repro.workloads.registry import get_workload

    if isinstance(workload, str):
        workload = get_workload(workload, params=params, small=small)
    elif not isinstance(workload, Workload):
        raise ConfigurationError(
            f"audit() wants a registry name or Workload, got {workload!r}"
        )
    return audit_workload(workload, seed=seed)


def run_experiment(
    name: str, small: bool = False, seed: int = 0, repeats: int = 1
) -> "ExperimentResult":
    """Run one table/figure by its runner name (``fig4``, ``table1``...).

    The programmatic mirror of ``python -m repro.experiments NAME``,
    speaking the :class:`~repro.experiments.common.ExperimentDriver`
    protocol (no deprecation warnings).
    """
    from repro.experiments.common import averaged
    from repro.experiments.runner import DRIVERS

    driver = DRIVERS.get(name)
    if driver is None:
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(DRIVERS))}"
        )
    if repeats > 1:
        return averaged(driver, repeats=repeats, small=small, seed=seed)
    return driver.render(small=small, seed=seed)


def replay(
    trace: object,
    approximator: Optional[ApproximatorConfig] = None,
    approximate: Optional[bool] = None,
) -> "FullSystemResult":
    """Replay a captured trace on the phase-2 full-system platform.

    ``trace`` may be a :class:`~repro.sim.trace.Trace` or a
    :class:`~repro.sim.trace.PackedTrace`; both replay through the packed
    columnar hot path and produce bit-identical results. Replay is *open
    loop* — recorded values are fed back exactly as captured — so it
    measures platform behaviour on a fixed access stream, not live
    output error (use :class:`Simulation` for that).

    ``approximate`` defaults to whether an ``approximator`` config was
    given; pass ``approximate=True`` alone for the baseline LVA config.
    """
    from repro.experiments.common import run_fullsystem

    if approximate is None:
        approximate = approximator is not None
    return run_fullsystem(trace, approximate=approximate, approximator=approximator)
