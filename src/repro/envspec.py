"""`repro.envspec` — the declared-environment registry.

Every ``REPRO_*`` environment variable the runtime reads is registered
here exactly once, with a *cache-key classification* that states its
relationship to the reproduction's one global correctness invariant:
anything that can change a simulated result must fold into the
result-cache / trace-store keys, and everything deliberately omitted
from the keys must be provably behavior-neutral.

Classifications:

``keyed``
    The variable's value can change computed results, and it therefore
    participates in the cache keys (``keyed_via`` names the key function
    that folds it in). Example: ``REPRO_INJECT`` memory-fault clauses.
``neutral``
    The variable changes *how* results are computed or stored (kernel
    selection, cache location, verification) but never the result bits.
    Neutrality is not taken on faith: ``pinned_by`` names the test
    module that pins the equivalence.
``capture-only``
    The variable only configures observability artifacts (telemetry,
    traces, profiles); results are bit-identical with it on or off,
    pinned by the disabled-overhead contract tests.

The runtime readers import their variable names from this module (the
string constants below), so a read site and its registration can never
drift apart — and ``lva-lint``'s LVA007 dataflow rule statically
verifies that every read goes through a registered constant, that
``keyed`` values actually reach a key function, and that ``neutral`` /
``capture-only`` values never do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: The classification vocabulary (see module docstring).
CLASSIFICATIONS: Tuple[str, ...] = ("keyed", "neutral", "capture-only")


@dataclass(frozen=True, slots=True)
class EnvVar:
    """One registered environment variable.

    Attributes:
        name: The full ``REPRO_*`` variable name.
        classification: ``keyed`` | ``neutral`` | ``capture-only``.
        description: One-line effect summary (feeds the README table).
        pinned_by: For ``neutral``/``capture-only``: the test module
            pinning behavior-neutrality. Empty for ``keyed``.
        keyed_via: For ``keyed``: the key function folding the value in.
    """

    name: str
    classification: str
    description: str
    pinned_by: str = ""
    keyed_via: str = ""


_REGISTRY: Dict[str, EnvVar] = {}


def _declare(
    name: str,
    classification: str,
    description: str,
    *,
    pinned_by: str = "",
    keyed_via: str = "",
) -> str:
    """Register one variable; returns its name for the reader constants."""
    if not name.startswith("REPRO_"):
        raise ValueError(f"environment variable {name!r} is not REPRO_-prefixed")
    if classification not in CLASSIFICATIONS:
        raise ValueError(
            f"{name}: classification {classification!r} is not one of "
            f"{CLASSIFICATIONS}"
        )
    if name in _REGISTRY:
        raise ValueError(f"environment variable {name!r} registered twice")
    if classification == "keyed" and not keyed_via:
        raise ValueError(f"{name}: keyed variables must name their key function")
    if classification != "keyed" and not pinned_by:
        raise ValueError(f"{name}: {classification} variables must name a pinning test")
    _REGISTRY[name] = EnvVar(
        name=name,
        classification=classification,
        description=description,
        pinned_by=pinned_by,
        keyed_via=keyed_via,
    )
    return name


# --------------------------------------------------------------------- #
# The registry — one declaration per variable, grouped by subsystem.    #
# --------------------------------------------------------------------- #

# Storage (repro.experiments.diskcache / tracestore / integrity / common).
CACHE_DIR_ENV = _declare(
    "REPRO_CACHE_DIR",
    "neutral",
    "root of the result cache and trace store (default ~/.cache/repro-lva)",
    pinned_by="tests/experiments/test_diskcache.py",
)
NO_CACHE_ENV = _declare(
    "REPRO_NO_CACHE",
    "neutral",
    "disable the result cache and trace store together",
    pinned_by="tests/experiments/test_diskcache.py",
)
TRACE_LRU_ENV = _declare(
    "REPRO_TRACE_LRU",
    "neutral",
    "bound the in-process packed-trace LRU (default 4)",
    pinned_by="tests/experiments/test_tracestore.py",
)
STORE_VERIFY_ENV = _declare(
    "REPRO_STORE_VERIFY",
    "neutral",
    "set to 0 to skip checksum verification when reading cached artifacts",
    pinned_by="tests/experiments/test_storage_chaos.py",
)

# Fault injection (repro.faults).
INJECT_ENV = _declare(
    "REPRO_INJECT",
    "keyed",
    "deterministic fault-injection spec (engine / memory / storage clauses)",
    keyed_via="repro.faults.memory.active_memory_spec",
)

# Predictor registry (repro.predictors).
PREDICTOR_ENV = _declare(
    "REPRO_PREDICTOR",
    "keyed",
    "override the registry predictor for Mode.PREDICTOR runs (lva, lvp, clp, hybrid)",
    keyed_via="repro.predictors.registry.active_override",
)

# Replay-kernel selection (repro.sim.kernels).
REPLAY_KERNEL_ENV = _declare(
    "REPRO_REPLAY_KERNEL",
    "neutral",
    "pin the trace-replay path: object, packed or vector (default vector)",
    pinned_by="tests/sim/test_kernels.py",
)
REPLAY_JIT_ENV = _declare(
    "REPRO_REPLAY_JIT",
    "neutral",
    "numba-compile the replay kernels' L1 oracle (falls back when absent)",
    pinned_by="tests/sim/test_kernels.py",
)
REPLAY_VECTOR_MIN_ENV = _declare(
    "REPRO_REPLAY_VECTOR_MIN",
    "neutral",
    "event count below which auto-selection prefers the packed interpreter (default 512)",
    pinned_by="tests/sim/test_kernels.py",
)

# Observability (repro.telemetry).
TELEMETRY_ENV = _declare(
    "REPRO_TELEMETRY",
    "capture-only",
    "truthy value enables the metrics registry and sim hooks",
    pinned_by="tests/telemetry/test_disabled_overhead.py",
)
TRACE_ENV = _declare(
    "REPRO_TRACE",
    "capture-only",
    "path of the JSONL trace file (setting it implies telemetry on)",
    pinned_by="tests/telemetry/test_disabled_overhead.py",
)
TELEMETRY_INTERVAL_ENV = _declare(
    "REPRO_TELEMETRY_INTERVAL",
    "capture-only",
    "instructions per interval snapshot (default 100000)",
    pinned_by="tests/telemetry/test_disabled_overhead.py",
)
TELEMETRY_SAMPLE_ENV = _declare(
    "REPRO_TELEMETRY_SAMPLE",
    "capture-only",
    "per-decision trace sampling rate (default 1024; 1 = every call)",
    pinned_by="tests/telemetry/test_disabled_overhead.py",
)
TELEMETRY_HOT_ENV = _declare(
    "REPRO_TELEMETRY_HOT",
    "capture-only",
    "opt per-load (hot-path) profiler spans in; read once at import",
    pinned_by="tests/telemetry/test_disabled_overhead.py",
)

# Benchmarks (benchmarks/test_trace_pack.py).
BENCH_OUT_ENV = _declare(
    "REPRO_BENCH_OUT",
    "capture-only",
    "output path of the replay-benchmark JSON report (default BENCH_replay.json)",
    pinned_by="benchmarks/test_trace_pack.py",
)


# --------------------------------------------------------------------- #
# Lookup and rendering                                                  #
# --------------------------------------------------------------------- #


def get(name: str) -> EnvVar:
    """The registration of ``name``; raises KeyError when undeclared."""
    return _REGISTRY[name]


def lookup(name: str) -> "EnvVar | None":
    """The registration of ``name``, or None when undeclared."""
    return _REGISTRY.get(name)


def all_vars() -> Tuple[EnvVar, ...]:
    """Every registered variable, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def classification(name: str) -> str:
    """The cache-key class of ``name``; raises KeyError when undeclared."""
    return _REGISTRY[name].classification


def markdown_flag_table() -> str:
    """The README environment-variable table, generated from the registry.

    One row per variable: name, effect, cache-key class (plus what pins
    or folds it). Regenerate with
    ``python -c "from repro import envspec; print(envspec.markdown_flag_table())"``.
    """
    lines: List[str] = [
        "| variable | effect | cache-key class |",
        "|---|---|---|",
    ]
    for var in all_vars():
        if var.classification == "keyed":
            detail = f"`keyed` (folds in via `{var.keyed_via}`)"
        else:
            detail = f"`{var.classification}` (pinned by `{var.pinned_by}`)"
        lines.append(f"| `{var.name}` | {var.description} | {detail} |")
    return "\n".join(lines)
