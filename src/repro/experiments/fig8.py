"""Figure 8: approximation degree vs prefetch degree — MPKI and fetches.

A GHB prefetcher (local delta correlation + next line) with degrees 2, 4,
8 and 16 is compared against LVA with the same approximation degrees.
Both reduce MPKI; the difference is the *fetch count*: prefetching buys
its MPKI reduction with extra fetches (up to ~1.7x in the paper), while
LVA's approximation degree cancels fetches outright (~0.6x at degree 16).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_technique,
)
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode

DEGREES: Tuple[int, ...] = (2, 4, 8, 16)


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    out = []
    for name in BASELINE_WORKLOADS:
        for degree in DEGREES:
            out.append(
                technique_point(
                    name, Mode.PREFETCH, prefetch_degree=degree, seed=seed, small=small
                )
            )
            out.append(
                technique_point(
                    name,
                    Mode.LVA,
                    ApproximatorConfig(approximation_degree=degree),
                    seed=seed,
                    small=small,
                )
            )
    return out


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep prefetch degree and approximation degree."""
    result = ExperimentResult(
        name="Figure 8",
        description="normalized MPKI and fetches: prefetching vs LVA degree",
        meta={
            "expectation": "prefetch fetches > 1.0 and rising; LVA fetches < 1.0 and falling"
        },
    )
    for name in BASELINE_WORKLOADS:
        for degree in DEGREES:
            prefetch = run_technique(
                name,
                Mode.PREFETCH,
                prefetch_degree=degree,
                seed=seed,
                small=small,
            )
            result.add(f"prefetch-{degree}-mpki", name, prefetch.normalized_mpki)
            result.add(
                f"prefetch-{degree}-fetches", name, prefetch.normalized_fetches
            )
            config = ApproximatorConfig(approximation_degree=degree)
            lva = run_technique(
                name, Mode.LVA, config=config, seed=seed, small=small
            )
            result.add(f"approx-{degree}-mpki", name, lva.normalized_mpki)
            result.add(f"approx-{degree}-fetches", name, lva.normalized_fetches)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig8", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig8.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig8.points")
