"""Parameter sensitivity: how much does each approximator knob matter?

A tornado-style analysis around the Table II baseline: every approximator
parameter is perturbed one-at-a-time to a lower and a higher setting, and
the resulting change in average normalized MPKI and output error across
the benchmarks quantifies which design choices the results actually hinge
on. Complements the per-figure sweeps by putting all knobs on one axis.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import ExperimentResult, run_technique
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode

#: (knob, low-override, high-override) around the Table II baseline.
PERTURBATIONS: Tuple[Tuple[str, dict, dict], ...] = (
    ("table_entries", {"table_entries": 64}, {"table_entries": 2048}),
    ("lhb_size", {"lhb_size": 1}, {"lhb_size": 8}),
    ("confidence_window", {"confidence_window": 0.02}, {"confidence_window": 0.50}),
    ("confidence_bits", {"confidence_bits": 2}, {"confidence_bits": 6}),
    ("ghb_size", {}, {"ghb_size": 2}),  # baseline 0 has no lower setting
    ("value_delay", {"value_delay": 0}, {"value_delay": 16}),
    ("approximation_degree", {}, {"approximation_degree": 8}),
)


def _workloads(small: bool) -> List[str]:
    if small:
        return ["blackscholes", "canneal", "fluidanimate"]
    return ["blackscholes", "canneal", "fluidanimate", "x264"]


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    out = []
    configs = [ApproximatorConfig()]
    for _, low, high in PERTURBATIONS:
        for overrides in (low, high):
            if overrides:
                configs.append(ApproximatorConfig(**overrides))
    for name in _workloads(small):
        for config in configs:
            out.append(technique_point(name, Mode.LVA, config, seed=seed, small=small))
    return out


def _mean_metrics(
    overrides: dict, small: bool, seed: int, workloads: List[str]
) -> Tuple[float, float]:
    config = ApproximatorConfig(**overrides)
    mpki_total = error_total = 0.0
    for name in workloads:
        outcome = run_technique(name, Mode.LVA, config=config, seed=seed, small=small)
        mpki_total += outcome.normalized_mpki
        error_total += outcome.output_error
    count = len(workloads)
    return mpki_total / count, error_total / count


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """One-at-a-time perturbation around the baseline configuration."""
    # A representative subset keeps the tornado affordable at full scale
    # while spanning int/float and high/low-MPKI behaviours.
    workloads = _workloads(small)

    result = ExperimentResult(
        name="Sensitivity",
        description="one-at-a-time parameter perturbations vs baseline",
        meta={"workloads": workloads},
    )
    base_mpki, base_error = _mean_metrics({}, small, seed, workloads)
    result.add("mpki", "baseline", base_mpki)
    result.add("error", "baseline", base_error)
    result.add("mpki_delta", "baseline", 0.0)
    result.add("error_delta", "baseline", 0.0)

    for knob, low, high in PERTURBATIONS:
        for suffix, overrides in (("low", low), ("high", high)):
            if not overrides:
                continue
            mpki, error = _mean_metrics(overrides, small, seed, workloads)
            label = f"{knob}-{suffix}"
            result.add("mpki", label, mpki)
            result.add("error", label, error)
            result.add("mpki_delta", label, mpki - base_mpki)
            result.add("error_delta", label, error - base_error)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="ablate-sensitivity", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.sensitivity.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.sensitivity.points")
