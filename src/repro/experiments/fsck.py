"""``lva-fsck``: offline integrity scan + repair of the storage layer.

The runtime already verifies on read (a corrupt entry heals as a miss),
but a long-lived shared cache accumulates debris the hot path never
revisits: entries bit-rotted after their last read, tmp files and
tmpdirs orphaned by killed publishers, schema generations left behind by
version bumps, journals with damaged middles. ``lva-fsck`` walks the
whole store — result cache, trace store, journals — and reports a
verdict per entry:

=================  ====================================================
``ok``             frame/checksums verify, schema current
``corrupt``        bytes present but damaged (bad magic length, CRC
                   mismatch, unreadable meta, mid-journal garbage)
``orphaned-tmp``   a ``*.tmp`` file or tmpdir left by a killed publish
``schema-mismatch``  a valid entry from an older schema generation
=================  ====================================================

``--repair`` moves corrupt/orphaned/stale entries into
``<cache-dir>/quarantine/<subsystem>/`` (journals are rewritten keeping
their valid lines); ``--delete`` removes them instead. Exit status is 0
when the store is clean (or fully repaired), 1 when problems remain.

Usage::

    lva-fsck                  # scan $REPRO_CACHE_DIR (or the default)
    lva-fsck --repair         # quarantine everything damaged
    lva-fsck --delete --json  # machine-readable, destructive
"""

from __future__ import annotations

import argparse
import json
import pickle
import shutil
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.experiments import diskcache, integrity, journal, tracestore
from repro.sim.trace import TRACE_COLUMNS

#: Verdicts that --repair / --delete act on.
ACTIONABLE = ("corrupt", "orphaned-tmp", "schema-mismatch")


@dataclass
class Finding:
    """One scanned artifact and what the scan concluded about it."""

    subsystem: str  # cache | trace | journal
    path: Path
    verdict: str  # ok | corrupt | orphaned-tmp | schema-mismatch
    detail: str = ""
    #: Set by repair: where the artifact went ("quarantined:<path>",
    #: "deleted", "rewritten", or "repair-failed").
    action: str = ""

    def as_dict(self) -> Dict[str, str]:
        return {
            "subsystem": self.subsystem,
            "path": str(self.path),
            "verdict": self.verdict,
            "detail": self.detail,
            "action": self.action,
        }


@dataclass
class ScanReport:
    findings: List[Finding] = field(default_factory=list)

    @property
    def problems(self) -> List[Finding]:
        return [f for f in self.findings if f.verdict in ACTIONABLE]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.verdict] = out.get(finding.verdict, 0) + 1
        return out


def _is_tmp(path: Path) -> bool:
    return path.name.endswith(".tmp") or (
        path.name.startswith(".") and ".tmp" in path.name
    )


# --------------------------------------------------------------------- #
# Scanners                                                              #
# --------------------------------------------------------------------- #


def scan_cache(root: Path) -> List[Finding]:
    """Verdict per result-cache entry under ``root`` (the cache dir)."""
    findings: List[Finding] = []
    if not root.exists():
        return findings
    for shard in sorted(root.iterdir()):
        if not shard.is_dir() or shard.name in (
            integrity.QUARANTINE_DIR,
            "traces",
            "journals",
        ):
            continue
        for path in sorted(shard.iterdir()):
            if _is_tmp(path):
                findings.append(
                    Finding("cache", path, "orphaned-tmp", "killed publish left debris")
                )
                continue
            if path.suffix != ".pkl" or not path.is_file():
                continue
            try:
                blob = path.read_bytes()
            except OSError as exc:
                findings.append(Finding("cache", path, "corrupt", f"unreadable: {exc}"))
                continue
            try:
                payload = integrity.unframe(blob)
            except integrity.IntegrityError as exc:
                verdict = "schema-mismatch" if exc.reason == "magic" else "corrupt"
                detail = (
                    "pre-checksum (v1) or foreign entry"
                    if exc.reason == "magic"
                    else f"frame {exc.reason} failure"
                )
                findings.append(Finding("cache", path, verdict, detail))
                continue
            try:
                pickle.loads(payload)
            except Exception as exc:  # checksum passed but pickle didn't
                findings.append(
                    Finding("cache", path, "corrupt", f"checksummed but unpicklable: {exc}")
                )
                continue
            findings.append(Finding("cache", path, "ok"))
    return findings


def scan_traces(root: Path) -> List[Finding]:
    """Verdict per trace-store entry under ``root`` (the cache dir)."""
    findings: List[Finding] = []
    store = root / "traces"
    if not store.exists():
        return findings
    for shard in sorted(store.iterdir()):
        if not shard.is_dir():
            continue
        for entry in sorted(shard.iterdir()):
            if _is_tmp(entry):
                findings.append(
                    Finding("trace", entry, "orphaned-tmp", "killed publish left tmpdir")
                )
                continue
            if not entry.is_dir():
                continue
            findings.append(_scan_trace_entry(entry))
    return findings


def _scan_trace_entry(entry: Path) -> Finding:
    meta_path = entry / tracestore.META_NAME
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except FileNotFoundError:
        return Finding("trace", entry, "corrupt", "no meta.json (incomplete publish)")
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        return Finding("trace", entry, "corrupt", f"meta unreadable: {exc}")
    if not isinstance(meta, dict) or not integrity.verify_record(meta):
        return Finding("trace", entry, "corrupt", "meta failed its self-checksum")
    if meta.get("trace_schema") != tracestore.TRACE_SCHEMA_VERSION:
        return Finding(
            "trace",
            entry,
            "schema-mismatch",
            f"trace_schema={meta.get('trace_schema')!r}, "
            f"current={tracestore.TRACE_SCHEMA_VERSION}",
        )
    checksums = meta.get("checksums", {})
    try:
        length = int(meta["events"])
    except (KeyError, TypeError, ValueError):
        return Finding("trace", entry, "corrupt", "meta missing/invalid events count")
    for name, dtype in TRACE_COLUMNS:
        column_path = entry / f"{name}.npy"
        if not column_path.is_file():
            return Finding("trace", entry, "corrupt", f"missing column {name!r}")
        expected = checksums.get(name)
        if expected is None or integrity.crc32_file(column_path) != expected:
            return Finding("trace", entry, "corrupt", f"column {name!r} failed checksum")
        try:
            column = np.load(column_path, mmap_mode="r" if length else None,
                             allow_pickle=False)
            if column.ndim != 1 or len(column) != length or column.dtype != np.dtype(dtype):
                return Finding(
                    "trace", entry, "corrupt", f"column {name!r} does not match meta"
                )
        except (OSError, ValueError) as exc:
            return Finding("trace", entry, "corrupt", f"column {name!r} unloadable: {exc}")
    return Finding("trace", entry, "ok")


def scan_journals(root: Path) -> List[Finding]:
    """Verdict per journal file under ``root`` (the cache dir)."""
    findings: List[Finding] = []
    store = root / "journals"
    if not store.exists():
        return findings
    for path in sorted(store.iterdir()):
        if not path.is_file():
            continue
        if _is_tmp(path):
            findings.append(Finding("journal", path, "orphaned-tmp"))
            continue
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            findings.append(Finding("journal", path, "corrupt", f"unreadable: {exc}"))
            continue
        lines = text.splitlines()
        valid = 0
        bad = 0
        torn_tail = False
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            final = index == len(lines) - 1 and not text.endswith("\n")
            try:
                record = json.loads(stripped)
            except ValueError:
                if final:
                    torn_tail = True  # expected hard-kill debris
                else:
                    bad += 1
                continue
            if isinstance(record, dict) and integrity.verify_record(record):
                valid += 1
            else:
                bad += 1
        if bad:
            findings.append(
                Finding(
                    "journal",
                    path,
                    "corrupt",
                    f"{bad} damaged line(s), {valid} valid (recoverable by --repair)",
                )
            )
        else:
            detail = "torn trailing line (tolerated)" if torn_tail else ""
            findings.append(Finding("journal", path, "ok", detail))
    return findings


def scan(root: Optional[Path] = None) -> ScanReport:
    """Scan all three subsystems; ``root`` defaults to the cache dir."""
    root = root or diskcache.default_cache_dir()
    report = ScanReport()
    report.findings.extend(scan_cache(root))
    report.findings.extend(scan_traces(root))
    report.findings.extend(scan_journals(root))
    return report


# --------------------------------------------------------------------- #
# Repair                                                                #
# --------------------------------------------------------------------- #


def _rewrite_journal(path: Path) -> bool:
    """Drop damaged lines from a journal, keeping valid records, atomically."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return False
    kept: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except ValueError:
            continue
        if isinstance(record, dict) and integrity.verify_record(record):
            kept.append(stripped)
    tmp = path.with_name(path.name + ".fsck.tmp")
    try:
        tmp.write_text("".join(line + "\n" for line in kept), encoding="utf-8")
        tmp.replace(path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return False
    return True


def repair(report: ScanReport, root: Optional[Path] = None, delete: bool = False) -> None:
    """Act on every actionable finding; records the action taken in-place.

    Corrupt journals are rewritten (valid lines survive — resume keeps
    working); everything else is quarantined under
    ``<root>/quarantine/<subsystem>/``, or deleted with ``delete=True``.
    """
    root = root or diskcache.default_cache_dir()
    for finding in report.problems:
        path = finding.path
        if finding.subsystem == "journal" and finding.verdict == "corrupt":
            finding.action = "rewritten" if _rewrite_journal(path) else "repair-failed"
            continue
        if delete:
            try:
                if path.is_dir():
                    shutil.rmtree(path)
                else:
                    path.unlink()
                finding.action = "deleted"
            except OSError:
                finding.action = "repair-failed"
            continue
        destination = integrity.quarantine(root, finding.subsystem, path)
        finding.action = (
            f"quarantined:{destination}" if destination is not None else "repair-failed"
        )


# --------------------------------------------------------------------- #
# CLI                                                                   #
# --------------------------------------------------------------------- #


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lva-fsck",
        description="Scan (and optionally repair) the LVA result cache, "
        "trace store and run journals.",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="store to scan (default: $REPRO_CACHE_DIR or ~/.cache/repro-lva)",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="quarantine damaged entries (rewrite corrupt journals in place)",
    )
    parser.add_argument(
        "--delete",
        action="store_true",
        help="with --repair semantics, but delete instead of quarantining",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-entry ok lines"
    )
    args = parser.parse_args(argv)

    root = args.cache_dir or diskcache.default_cache_dir()
    report = scan(root)
    if args.repair or args.delete:
        repair(report, root, delete=args.delete)

    problems = report.problems
    unresolved = [
        f
        for f in problems
        if not (f.action.startswith("quarantined") or f.action in ("deleted", "rewritten"))
    ]
    if args.json:
        print(
            json.dumps(
                {
                    "root": str(root),
                    "counts": report.counts(),
                    "findings": [f.as_dict() for f in report.findings],
                    "clean": not unresolved,
                },
                indent=2,
            )
        )
    else:
        for finding in report.findings:
            if args.quiet and finding.verdict == "ok":
                continue
            suffix = f" [{finding.action}]" if finding.action else ""
            detail = f" ({finding.detail})" if finding.detail else ""
            print(f"{finding.verdict:16} {finding.subsystem:8} {finding.path}{detail}{suffix}")
        counts = report.counts()
        summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items())) or "empty store"
        print(f"lva-fsck: {root}: {summary}")
        if problems and not (args.repair or args.delete):
            print("lva-fsck: run with --repair to quarantine damaged entries")
    return 1 if unresolved else 0


if __name__ == "__main__":
    raise SystemExit(main())
