"""A persistent, cross-process result cache for experiment sweep points.

The in-process caches of :mod:`repro.experiments.common` die with the
process, so parallel workers (and successive CLI invocations) redundantly
re-run every precise baseline and every shared technique point. This
module adds a third cache layer on disk:

* **Keys** are stable content hashes: every field of the
  :class:`~repro.core.config.ApproximatorConfig`, the workload name, seed,
  scale, workload params and a :data:`SCHEMA_VERSION` are serialised into
  a canonical string and SHA-256 hashed, so the same sweep point maps to
  the same file from any process on any run — and any change to the result
  schema invalidates every stale entry at once.
* **Records** (:class:`~repro.experiments.common.PreciseReference` /
  :class:`~repro.experiments.common.TechniqueResult`) are pickled to one
  file per key, framed with a CRC32 content checksum
  (:mod:`repro.experiments.integrity`) and written atomically (temp file
  + ``os.replace``) so concurrent writers can never expose a torn entry
  and silent damage fails closed on read.
* Because the simulations are deterministic, serving a record from disk is
  semantically invisible: a cached result is bit-identical to recomputing.
  A record that fails its checksum heals as a miss (warn-once +
  ``storage.corrupt.cache`` counter) — a wrong result is never served.

All I/O routes through the :mod:`repro.faults.fsfaults` hooks, so
``REPRO_INJECT`` storage clauses can tear writes, fail renames or kill
the process at any publish step deterministically.

Disable the layer with the ``REPRO_NO_CACHE`` environment variable or the
CLI's ``--no-cache`` flag; relocate it with ``REPRO_CACHE_DIR`` (default:
``~/.cache/repro-lva``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.envspec import CACHE_DIR_ENV, NO_CACHE_ENV
from repro.experiments import integrity
from repro.faults import fsfaults

#: Bump when PreciseReference/TechniqueResult fields or the simulation
#: semantics change: every existing on-disk entry becomes unreachable
#: (different key) instead of silently deserialising stale science.
#: v2: entries are checksum-framed (see repro.experiments.integrity);
#: v1 raw-pickle entries are unreachable and lva-fsck reports them as
#: schema-mismatch.
SCHEMA_VERSION = 2

#: ``NO_CACHE_ENV`` disables the disk layer entirely; ``CACHE_DIR_ENV``
#: overrides the cache directory. Both are declared (with their
#: cache-key classification) in :mod:`repro.envspec`.


def default_cache_dir() -> Path:
    """The cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-lva``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-lva"


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set (to anything non-empty)."""
    return not os.environ.get(NO_CACHE_ENV)


# --------------------------------------------------------------------- #
# Keys                                                                  #
# --------------------------------------------------------------------- #


def _canonical(value: object) -> str:
    """A stable, process-independent textual form of a key component.

    Dataclasses (e.g. ApproximatorConfig) expand to sorted field=value
    pairs; enums to their value; dicts to sorted items; floats through
    repr (exact for round-trippable IEEE doubles, including inf).
    """
    if isinstance(value, enum.Enum):
        # Enum members: identify by class + name, not object identity.
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(
            (f.name, getattr(value, f.name)) for f in dataclasses.fields(value)
        )
        inner = ",".join(f"{name}={_canonical(v)}" for name, v in fields)
        return f"{type(value).__name__}({inner})"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_canonical(k)}:{_canonical(v)}" for k, v in sorted(value.items())
        )
        return f"{{{inner}}}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical(v) for v in value)
        return f"[{inner}]"
    return repr(value)


def point_key(kind: str, **components: object) -> str:
    """SHA-256 content hash identifying one cached record.

    ``kind`` separates record namespaces ("precise", "technique");
    components are the full defining configuration of the point. The
    schema version participates in the hash, so bumping it orphans every
    older entry.
    """
    payload = f"schema={SCHEMA_VERSION};kind={kind};" + ";".join(
        f"{name}={_canonical(value)}" for name, value in sorted(components.items())
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# The cache                                                             #
# --------------------------------------------------------------------- #


@dataclass
class DiskCacheStats:
    """Hit/miss/store counters for one process's view of the disk layer."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


@dataclass
class DiskCache:
    """One directory of pickled records, one file per content-hash key.

    Safe under concurrent writers: entries are immutable once written
    (same key ⇒ same deterministic content) and writes go through a
    temporary file renamed into place, which is atomic on POSIX. A racing
    duplicate write just replaces identical bytes.
    """

    directory: Path = field(default_factory=default_cache_dir)
    stats: DiskCacheStats = field(default_factory=DiskCacheStats)
    #: Set after the first failed store: the directory is unwritable
    #: (read-only, quota, permissions), so further stores are skipped
    #: instead of paying a failing syscall per point.
    _broken: bool = field(default=False, repr=False)

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings manageable for large
        # sweeps (thousands of points).
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[object]:
        """The stored record, or None when absent or unreadable.

        A corrupt entry (torn by a crash mid-rename on a non-POSIX
        filesystem, truncated by disk pressure, or bit-rotted) fails its
        frame checksum, is reported once (``storage.corrupt.cache``
        counter) and counts as a miss; the file is deleted so the slot
        heals on the next store.
        """
        path = self._path(key)
        try:
            fsfaults.on_read("cache.entry.read", path)
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = integrity.unframe(blob)
            record: object = pickle.loads(payload)
        except integrity.IntegrityError as exc:
            self.stats.misses += 1
            integrity.report_corruption("cache", path, exc.reason)
            self._heal(path)
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            self.stats.misses += 1
            integrity.report_corruption("cache", path, "unpickle")
            self._heal(path)
            return None
        self.stats.hits += 1
        return record

    @staticmethod
    def _heal(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, record: object) -> None:
        """Store ``record`` under ``key`` atomically; failures warn once.

        The cache is an accelerator, never a correctness dependency — a
        full disk or read-only cache dir degrades to recomputation. The
        first OSError (mkdir, mkstemp or replace) emits one
        RuntimeWarning and flips the cache into no-op store mode; gets
        keep working (the directory may still be readable).
        """
        if self._broken:
            return
        path = self._path(key)
        try:
            blob = integrity.frame(
                pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            )
            blob = fsfaults.on_write("cache.entry.write", path, blob)
            path.parent.mkdir(parents=True, exist_ok=True)
            generation = integrity.next_generation()
            fsfaults.crash_point("cache.publish.pre_write")
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".g{generation}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                fsfaults.crash_point("cache.publish.pre_rename")
                fsfaults.on_rename("cache.entry.rename", path)
                os.replace(tmp, path)
                fsfaults.crash_point("cache.publish.post_rename")
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.stores += 1
            fsfaults.damage_published("cache.entry.published", path)
        except OSError as exc:
            self._broken = True
            warnings.warn(
                f"disk cache at {self.directory} is not writable ({exc}); "
                f"results will be recomputed instead of cached",
                RuntimeWarning,
                stacklevel=2,
            )

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for path in self.directory.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.pkl"))


# --------------------------------------------------------------------- #
# Process-wide default instance                                         #
# --------------------------------------------------------------------- #

_ACTIVE: Optional[DiskCache] = None
_ACTIVE_DIR: Optional[Path] = None
_DISABLED_OVERRIDE = False


def active_cache() -> Optional[DiskCache]:
    """The process-wide cache, or None when the layer is disabled.

    Re-resolves the directory from the environment on every call cheaply
    (compares, does not recreate), so tests that monkeypatch
    ``REPRO_CACHE_DIR`` or ``REPRO_NO_CACHE`` see the change immediately —
    and so worker processes inherit the parent's configuration through the
    environment with no extra plumbing.
    """
    global _ACTIVE, _ACTIVE_DIR
    if _DISABLED_OVERRIDE or not cache_enabled():
        return None
    directory = default_cache_dir()
    if _ACTIVE is None or _ACTIVE_DIR != directory:
        _ACTIVE = DiskCache(directory=directory)
        _ACTIVE_DIR = directory
    return _ACTIVE


def disable() -> None:
    """Programmatically switch the disk layer off (CLI ``--no-cache``)."""
    global _DISABLED_OVERRIDE
    _DISABLED_OVERRIDE = True
    # Workers spawned after this point must inherit the decision.
    os.environ[NO_CACHE_ENV] = "1"


def enable() -> None:
    """Re-enable the disk layer after :func:`disable` (mainly for tests)."""
    global _DISABLED_OVERRIDE
    _DISABLED_OVERRIDE = False
    os.environ.pop(NO_CACHE_ENV, None)
