"""Figure 11: L1-miss energy-delay product across approximation degrees.

EDP combines the miss-path dynamic energy with the average L1 miss
latency, normalized to precise execution. The paper reports average L1
miss EDP reductions of 41.9 %, 53.8 % and 63.8 % at degrees 0, 4 and 16
(normalized EDP 0.58, 0.46, 0.36) — performance *and* energy improve
together, which neither prefetching nor LVP can do.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_fullsystem_point,
)
from repro.experiments.sweep import SweepPoint, fullsystem_point

DEGREES: Tuple[int, ...] = (0, 2, 4, 8, 16)


def _config(degree: int) -> ApproximatorConfig:
    return ApproximatorConfig(approximation_degree=degree)


def points(small: bool = False, seed: int = 0) -> List[SweepPoint]:
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    pts: List[SweepPoint] = []
    for name in BASELINE_WORKLOADS:
        pts.append(fullsystem_point(name, seed=seed, small=small))
        for degree in DEGREES:
            pts.append(fullsystem_point(name, _config(degree), seed=seed, small=small))
    return pts


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Replay each workload full-system, measuring normalized L1-miss EDP."""
    result = ExperimentResult(
        name="Figure 11",
        description="normalized L1-miss EDP vs approximation degree",
        meta={"paper_normalized_edp": {0: 0.581, 4: 0.462, 16: 0.362}},
    )
    for name in BASELINE_WORKLOADS:
        baseline = run_fullsystem_point(name, seed=seed, small=small)
        baseline_edp = baseline.miss_edp
        for degree in DEGREES:
            lva = run_fullsystem_point(
                name,
                approximate=True,
                approximator=_config(degree),
                seed=seed,
                small=small,
            )
            normalized = lva.miss_edp / baseline_edp if baseline_edp else 0.0
            result.add(f"approx-{degree}", name, normalized)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig11", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig11.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig11.points")
