"""Figure 11: L1-miss energy-delay product across approximation degrees.

EDP combines the miss-path dynamic energy with the average L1 miss
latency, normalized to precise execution. The paper reports average L1
miss EDP reductions of 41.9 %, 53.8 % and 63.8 % at degrees 0, 4 and 16
(normalized EDP 0.58, 0.46, 0.36) — performance *and* energy improve
together, which neither prefetching nor LVP can do.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    capture_trace,
    run_fullsystem,
)

DEGREES: Tuple[int, ...] = (0, 2, 4, 8, 16)


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Replay each workload full-system, measuring normalized L1-miss EDP."""
    result = ExperimentResult(
        name="Figure 11",
        description="normalized L1-miss EDP vs approximation degree",
        meta={"paper_normalized_edp": {0: 0.581, 4: 0.462, 16: 0.362}},
    )
    for name in BASELINE_WORKLOADS:
        trace = capture_trace(name, seed=seed, small=small)
        baseline = run_fullsystem(trace, approximate=False)
        baseline_edp = baseline.miss_edp
        for degree in DEGREES:
            config = ApproximatorConfig(approximation_degree=degree)
            lva = run_fullsystem(trace, approximate=True, approximator=config)
            normalized = lva.miss_edp / baseline_edp if baseline_edp else 0.0
            result.add(f"approx-{degree}", name, normalized)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig11", render_fn=run)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig11.run")
