"""Ablation studies for the design choices the paper calls out.

Beyond the published figures, these sweeps isolate individual design
decisions of the baseline approximator:

* ``table_size``        — Section VII-A argues even much smaller tables
  work because so few static loads are annotated (Figure 12);
* ``lhb_size``          — how much local history the average needs;
* ``compute_function``  — the paper "tried different LHB functions such as
  strides and deltas and found average to be most accurate";
* ``int_confidence``    — the baseline exempts integer data from
  confidence (Section VI-B); this quantifies that choice;
* ``confidence_steps``  — the variable-step confidence updates Section
  III-B defers to future work, implemented in
  :func:`repro.core.confidence.confidence_update_steps`.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import ApproximatorConfig
from repro.core.functions import COMPUTE_FUNCTIONS
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_technique,
)
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode

TABLE_SIZES: Tuple[int, ...] = (32, 64, 128, 256, 512)
LHB_SIZES: Tuple[int, ...] = (1, 2, 4, 8)
CONFIDENCE_STEPS: Tuple[int, ...] = (1, 2, 4)
#: Benchmarks with integer-typed annotated data (Section IV-A).
INT_WORKLOADS: Tuple[str, ...] = ("bodytrack", "canneal", "x264")


def table_size_points(small: bool = False, seed: int = 0):
    """Sweep points for :func:`table_size`."""
    return [
        technique_point(
            name,
            Mode.LVA,
            ApproximatorConfig(table_entries=entries),
            seed=seed,
            small=small,
        )
        for name in BASELINE_WORKLOADS
        for entries in TABLE_SIZES
    ]


def table_size(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep the approximator table size (Section VII-A)."""
    result = ExperimentResult(
        name="Ablation: table size",
        description="normalized MPKI vs approximator table entries",
        meta={"expectation": "small tables nearly match 512 entries"},
    )
    for name in BASELINE_WORKLOADS:
        for entries in TABLE_SIZES:
            config = ApproximatorConfig(table_entries=entries)
            lva = run_technique(name, Mode.LVA, config=config, seed=seed, small=small)
            result.add(f"entries-{entries}", name, lva.normalized_mpki)
    return result


def lhb_size_points(small: bool = False, seed: int = 0):
    """Sweep points for :func:`lhb_size`."""
    return [
        technique_point(
            name, Mode.LVA, ApproximatorConfig(lhb_size=size), seed=seed, small=small
        )
        for name in BASELINE_WORKLOADS
        for size in LHB_SIZES
    ]


def lhb_size(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep the local-history depth feeding the AVERAGE function."""
    result = ExperimentResult(
        name="Ablation: LHB size",
        description="normalized MPKI and error vs LHB entries",
    )
    for name in BASELINE_WORKLOADS:
        for size in LHB_SIZES:
            config = ApproximatorConfig(lhb_size=size)
            lva = run_technique(name, Mode.LVA, config=config, seed=seed, small=small)
            result.add(f"mpki-lhb-{size}", name, lva.normalized_mpki)
            result.add(f"error-lhb-{size}", name, lva.output_error)
    return result


def compute_function_points(small: bool = False, seed: int = 0):
    """Sweep points for :func:`compute_function`."""
    return [
        technique_point(
            name, Mode.LVA, ApproximatorConfig(compute_fn=fn), seed=seed, small=small
        )
        for name in BASELINE_WORKLOADS
        for fn in sorted(COMPUTE_FUNCTIONS)
    ]


def compute_function(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Compare the LHB computation functions f (Section III-A)."""
    result = ExperimentResult(
        name="Ablation: computation function",
        description="normalized MPKI and error per f(LHB)",
        meta={"expectation": "average is the most accurate overall"},
    )
    for name in BASELINE_WORKLOADS:
        for fn in sorted(COMPUTE_FUNCTIONS):
            config = ApproximatorConfig(compute_fn=fn)
            lva = run_technique(name, Mode.LVA, config=config, seed=seed, small=small)
            result.add(f"mpki-{fn}", name, lva.normalized_mpki)
            result.add(f"error-{fn}", name, lva.output_error)
    return result


def int_confidence_points(small: bool = False, seed: int = 0):
    """Sweep points for :func:`int_confidence`."""
    return [
        technique_point(
            name,
            Mode.LVA,
            ApproximatorConfig(apply_confidence_to_ints=gated),
            seed=seed,
            small=small,
        )
        for name in INT_WORKLOADS
        for gated in (False, True)
    ]


def int_confidence(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Quantify the baseline's integer-confidence exemption (Section VI-B)."""
    result = ExperimentResult(
        name="Ablation: integer confidence",
        description="integer benchmarks with/without confidence gating",
        meta={"workloads": list(INT_WORKLOADS)},
    )
    for name in INT_WORKLOADS:
        off = run_technique(
            name,
            Mode.LVA,
            config=ApproximatorConfig(apply_confidence_to_ints=False),
            seed=seed,
            small=small,
        )
        on = run_technique(
            name,
            Mode.LVA,
            config=ApproximatorConfig(apply_confidence_to_ints=True),
            seed=seed,
            small=small,
        )
        result.add("mpki-no-confidence", name, off.normalized_mpki)
        result.add("mpki-confidence", name, on.normalized_mpki)
        result.add("error-no-confidence", name, off.output_error)
        result.add("error-confidence", name, on.output_error)
    return result


def confidence_steps_points(small: bool = False, seed: int = 0):
    """Sweep points for :func:`confidence_steps`."""
    return [
        technique_point(
            name,
            Mode.LVA,
            ApproximatorConfig(
                confidence_step_max=step,
                apply_confidence_to_ints=True,
                apply_confidence_to_floats=True,
            ),
            seed=seed,
            small=small,
        )
        for name in BASELINE_WORKLOADS
        for step in CONFIDENCE_STEPS
    ]


def confidence_steps(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Variable-step confidence updates (the paper's deferred optimisation).

    Confidence gating is enabled for both datatypes so the step size can
    actually influence coverage everywhere.
    """
    result = ExperimentResult(
        name="Ablation: confidence step",
        description="normalized MPKI and error vs max confidence step",
    )
    for name in BASELINE_WORKLOADS:
        for step in CONFIDENCE_STEPS:
            config = ApproximatorConfig(
                confidence_step_max=step,
                apply_confidence_to_ints=True,
                apply_confidence_to_floats=True,
            )
            lva = run_technique(name, Mode.LVA, config=config, seed=seed, small=small)
            result.add(f"mpki-step-{step}", name, lva.normalized_mpki)
            result.add(f"error-step-{step}", name, lva.output_error)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: One :class:`~repro.experiments.common.ExperimentDriver` per ablation.
DRIVERS = {
    "ablate-table-size": Driver(name="ablate-table-size", render_fn=table_size, points_fn=table_size_points),
    "ablate-lhb-size": Driver(name="ablate-lhb-size", render_fn=lhb_size, points_fn=lhb_size_points),
    "ablate-compute-fn": Driver(name="ablate-compute-fn", render_fn=compute_function, points_fn=compute_function_points),
    "ablate-int-confidence": Driver(name="ablate-int-confidence", render_fn=int_confidence, points_fn=int_confidence_points),
    "ablate-confidence-steps": Driver(name="ablate-confidence-steps", render_fn=confidence_steps, points_fn=confidence_steps_points),
}
table_size = deprecated_entry(DRIVERS["ablate-table-size"], "render", "repro.experiments.ablations.table_size")
table_size_points = deprecated_entry(DRIVERS["ablate-table-size"], "points", "repro.experiments.ablations.table_size_points")
lhb_size = deprecated_entry(DRIVERS["ablate-lhb-size"], "render", "repro.experiments.ablations.lhb_size")
lhb_size_points = deprecated_entry(DRIVERS["ablate-lhb-size"], "points", "repro.experiments.ablations.lhb_size_points")
compute_function = deprecated_entry(DRIVERS["ablate-compute-fn"], "render", "repro.experiments.ablations.compute_function")
compute_function_points = deprecated_entry(DRIVERS["ablate-compute-fn"], "points", "repro.experiments.ablations.compute_function_points")
int_confidence = deprecated_entry(DRIVERS["ablate-int-confidence"], "render", "repro.experiments.ablations.int_confidence")
int_confidence_points = deprecated_entry(DRIVERS["ablate-int-confidence"], "points", "repro.experiments.ablations.int_confidence_points")
confidence_steps = deprecated_entry(DRIVERS["ablate-confidence-steps"], "render", "repro.experiments.ablations.confidence_steps")
confidence_steps_points = deprecated_entry(DRIVERS["ablate-confidence-steps"], "points", "repro.experiments.ablations.confidence_steps_points")
