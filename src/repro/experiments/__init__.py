"""Experiment drivers: one module per table/figure of the paper.

Every driver exposes ``run(small=False, seed=0) -> ExperimentResult`` and
can be executed from the command line via ``python -m repro.experiments``
(see :mod:`repro.experiments.runner`). The benchmark harness under
``benchmarks/`` wraps these same drivers with pytest-benchmark.

=========  ==========================================================
table1     Precise L1 MPKI + dynamic instruction-count variation
table2     Configuration constants (verified, not measured)
fig4       Normalized MPKI: LVA vs idealized LVP across GHB sizes
fig5       Output error across GHB sizes
fig6       MPKI + error across relaxed confidence windows
fig7       MPKI + error across value delays
fig8       MPKI + fetches: approximation degree vs prefetch degree
fig9       Output error across approximation degrees
fig10      Full-system speedup + energy savings vs degree
fig11      Normalized L1-miss EDP vs degree
fig12      Static approximate-load PC counts
fig13      fluidanimate MPKI vs float mantissa precision loss
fig_predictors  Cross-predictor MPKI/coverage/error (registry zoo)
=========  ==========================================================
"""

from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    capture_trace,
    geometric_mean,
    run_fullsystem_point,
    run_precise_reference,
    run_technique,
)

__all__ = [
    "BASELINE_WORKLOADS",
    "ExperimentResult",
    "capture_trace",
    "geometric_mean",
    "run_fullsystem_point",
    "run_precise_reference",
    "run_technique",
]
