"""Table I: precise L1 MPKI and instruction-count variation under LVA.

The paper reports, per benchmark, the L1 MPKI of precise execution and how
much the dynamic instruction count changes when load value approximation is
enabled (variation is low across all workloads because only data values —
not the algorithms — change).
"""

from __future__ import annotations

from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_precise_reference,
    run_technique,
)
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode

#: The paper's Table I, for side-by-side comparison in reports.
PAPER_MPKI = {
    "blackscholes": 0.93,
    "bodytrack": 4.93,
    "canneal": 12.50,
    "ferret": 3.28,
    "fluidanimate": 1.23,
    "swaptions": 4.92e-5,
    "x264": 0.59,
}
PAPER_VARIATION = {
    "blackscholes": 0.0099,
    "bodytrack": 0.0005,
    "canneal": 0.0125,
    "ferret": 0.0060,
    "fluidanimate": 0.0017,
    "swaptions": 0.0,
    "x264": 0.0237,
}


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine).

    The precise references :func:`run` also reads are the baselines of
    these technique points, so the engine schedules them implicitly.
    """
    return [
        technique_point(name, Mode.LVA, seed=seed, small=small)
        for name in BASELINE_WORKLOADS
    ]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Measure precise MPKI and LVA instruction-count variation."""
    result = ExperimentResult(
        name="Table I",
        description="precise L1 MPKI and dynamic instruction-count variation",
        meta={"paper_mpki": PAPER_MPKI, "paper_variation": PAPER_VARIATION},
    )
    for name in BASELINE_WORKLOADS:
        reference = run_precise_reference(name, seed=seed, small=small)
        lva = run_technique(name, Mode.LVA, seed=seed, small=small)
        result.add("precise_mpki", name, reference.mpki)
        result.add("instruction_variation", name, lva.instruction_variation)
        result.add("paper_mpki", name, PAPER_MPKI[name])
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="table1", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.table1.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.table1.points")
