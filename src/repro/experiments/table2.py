"""Table II: configuration constants of the evaluation platform.

Table II is input, not output — this driver simply materialises the
baseline configurations so reports (and tests) can verify the platform
matches the paper's parameters exactly.
"""

from __future__ import annotations

from repro.core.config import ApproximatorConfig
from repro.experiments.common import ExperimentResult
from repro.fullsystem.config import FullSystemConfig


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Collect the platform and approximator configuration values."""
    del small, seed  # configuration is scale-independent
    approximator = ApproximatorConfig()
    system = FullSystemConfig()
    result = ExperimentResult(
        name="Table II",
        description="configuration parameters used in evaluation",
    )
    rows = {
        "cores": system.num_cores,
        "core_width": system.core.width,
        "rob_entries": system.core.rob_entries,
        "l1_kb": system.l1.size_bytes / 1024,
        "l1_ways": system.l1.associativity,
        "l1_latency": system.l1.latency,
        "l2_kb": system.l2.size_bytes / 1024,
        "l2_ways": system.l2.associativity,
        "l2_latency": system.l2.latency,
        "memory_latency": system.memory_latency,
        "mesh_width": system.noc.width,
        "router_latency": system.noc.router_latency,
        "approx_table_entries": approximator.table_entries,
        "confidence_bits": approximator.confidence_bits,
        "confidence_min": approximator.confidence_min,
        "confidence_max": approximator.confidence_max,
        "confidence_window": approximator.confidence_window,
        "ghb_entries": approximator.ghb_size,
        "lhb_entries": approximator.lhb_size,
        "tag_bits": approximator.tag_bits,
        "value_delay": approximator.value_delay,
        "approximation_degree": approximator.approximation_degree,
    }
    for key, value in rows.items():
        result.add("value", key, float(value))
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="table2", render_fn=run)
run = deprecated_entry(DRIVER, "render", "repro.experiments.table2.run")
