"""A memory-mapped, cross-process store of packed phase-2 traces.

Trace capture is the expensive half of the paper's two-phase methodology:
every full-system sweep point needs the same (workload, seed, scale)
trace, and before this store existed each worker process re-ran the
workload to re-capture it. The store persists each captured trace once as
a directory of plain ``.npy`` column files (one per
:data:`repro.sim.trace.TRACE_COLUMNS` entry) plus a ``meta.json``;
readers open the columns with ``np.load(..., mmap_mode="r")``, so every
worker on the machine shares the same physical page-cache bytes
zero-copy instead of holding a private object-list copy.

Layout and invalidation rules:

* Entries live under ``<cache-dir>/traces/<key[:2]>/<key>/`` beside the
  result :mod:`~repro.experiments.diskcache` (same ``REPRO_CACHE_DIR``
  override, same ``REPRO_NO_CACHE`` kill-switch).
* **Keys** are SHA-256 content hashes of (workload, seed, scale, workload
  params, :data:`TRACE_SCHEMA_VERSION`): bumping the schema version —
  required whenever the packed column set or the capture semantics
  change — orphans every older entry instead of silently replaying stale
  science.
* Writers publish atomically: columns are written into a temporary
  sibling directory (``meta.json`` last) and ``os.rename``\\ d into
  place, so readers can never observe a torn entry; a racing duplicate
  writer loses the rename and discards its copy. Each publish carries a
  generation stamp, and ``meta.json`` records a CRC32 per column plus a
  self-checksum (:mod:`repro.experiments.integrity`).
* A corrupt, truncated or schema-mismatched entry counts as a **miss**
  and is deleted, so the slot heals on the next capture. Checksum
  failures are additionally reported (warn-once +
  ``storage.corrupt.trace`` counter) — a damaged column is never
  replayed into results. Verify-on-read can be disabled with
  ``REPRO_STORE_VERIFY=0``.

All I/O routes through the :mod:`repro.faults.fsfaults` hooks, so
``REPRO_INJECT`` storage clauses can deterministically tear column
writes, corrupt published bytes, fail the publish rename or kill the
process at any step of the publish sequence.

The store is an accelerator, never a correctness dependency: simulations
are deterministic, so a trace served from disk is bit-identical to
re-capturing it.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro import telemetry
from repro.experiments import diskcache, integrity
from repro.faults import fsfaults
from repro.sim.trace import TRACE_COLUMNS, PackedTrace

#: Bump when the packed column set or the trace-capture semantics change:
#: every existing on-disk trace becomes unreachable (different key).
#: v2: meta.json carries per-column CRC32s, a generation stamp and a
#: self-checksum; columns are verified on read.
TRACE_SCHEMA_VERSION = 2

#: The per-entry metadata file, written last — its presence marks a
#: complete entry.
META_NAME = "meta.json"


def store_root() -> Path:
    """Where trace entries live: ``<result-cache-dir>/traces``."""
    return diskcache.default_cache_dir() / "traces"


def trace_key(
    workload: str, seed: int, small: bool, params: Optional[dict] = None
) -> str:
    """Content hash identifying one captured trace.

    Captures are precise and clean (fault injection never applies, see
    :func:`repro.experiments.common.capture_trace`), so the key has no
    mode/config/fault components — only what defines the workload run.
    """
    return diskcache.point_key(
        "trace",
        workload=workload,
        seed=seed,
        small=small,
        params=tuple(sorted((params or {}).items())),
        trace_schema=TRACE_SCHEMA_VERSION,
    )


def _count(name: str, amount: int = 1) -> None:
    """Bump a trace-store metric when telemetry is enabled."""
    if telemetry.enabled():
        telemetry.metrics().counter(name).add(amount)


@dataclass
class TraceStoreStats:
    """Hit/miss/store counters for one process's view of the store."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    bytes_mapped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_mapped": self.bytes_mapped,
        }


@dataclass
class TraceStore:
    """One directory of packed-trace entries, one subdirectory per key."""

    directory: Path = field(default_factory=store_root)
    stats: TraceStoreStats = field(default_factory=TraceStoreStats)
    #: Set after the first failed store: the directory is unwritable, so
    #: further puts are skipped instead of failing per capture.
    _broken: bool = field(default=False, repr=False)

    def _entry_dir(self, key: str) -> Path:
        # Same two-level fan-out as the result cache.
        return self.directory / key[:2] / key

    # ------------------------------------------------------------------ #
    # Reads                                                              #
    # ------------------------------------------------------------------ #

    def get(self, key: str, mmap: bool = True) -> Optional[PackedTrace]:
        """The stored packed trace, or None when absent or unreadable.

        Columns are opened with ``mmap_mode="r"`` (zero-copy,
        shared across processes through the page cache) unless ``mmap``
        is False. Corrupt or schema-mismatched entries count as misses
        and are deleted so the slot heals on the next capture.
        """
        entry = self._entry_dir(key)
        try:
            # A missing meta.json means "no entry" (it is written last, so
            # its presence marks completeness); anything failing past this
            # point is a damaged entry and is deleted.
            fsfaults.on_read("trace.meta.read", entry / META_NAME)
            with open(entry / META_NAME, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            _count("trace.store.miss")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.misses += 1
            _count("trace.store.miss")
            integrity.report_corruption("trace", entry / META_NAME, "meta-unreadable")
            shutil.rmtree(entry, ignore_errors=True)
            return None
        if not integrity.verify_record(meta):
            # A meta that parses but fails its self-checksum is damage,
            # not a schema generation gap — report before healing.
            self.stats.misses += 1
            _count("trace.store.miss")
            integrity.report_corruption("trace", entry / META_NAME, "meta-checksum")
            shutil.rmtree(entry, ignore_errors=True)
            return None
        try:
            if meta.get("trace_schema") != TRACE_SCHEMA_VERSION:
                raise ValueError("trace schema mismatch")
            length = int(meta["events"])
            checksums = meta.get("checksums", {})
            verify = integrity.verify_enabled()
            arrays: Dict[str, np.ndarray] = {}
            for name, dtype in TRACE_COLUMNS:
                column_path = entry / f"{name}.npy"
                fsfaults.on_read("trace.column.read", column_path)
                if verify:
                    expected = checksums.get(name)
                    if expected is None or integrity.crc32_file(column_path) != expected:
                        integrity.report_corruption("trace", column_path, "column-checksum")
                        raise ValueError(f"column {name!r} failed its checksum")
                # Zero-length files cannot be mmapped; tiny anyway.
                mode = "r" if mmap and length else None
                column = np.load(column_path, mmap_mode=mode, allow_pickle=False)
                if (
                    column.ndim != 1
                    or len(column) != length
                    or column.dtype != np.dtype(dtype)
                ):
                    raise ValueError(f"column {name!r} does not match meta")
                arrays[name] = column
            packed = PackedTrace(**arrays)
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            _count("trace.store.miss")
            shutil.rmtree(entry, ignore_errors=True)
            return None
        self.stats.hits += 1
        self.stats.bytes_mapped += packed.nbytes
        _count("trace.store.hit")
        _count("trace.store.bytes_mapped", packed.nbytes)
        return packed

    def has(self, key: str) -> bool:
        """Whether a complete, schema-current entry exists for ``key``."""
        try:
            with open(self._entry_dir(key) / META_NAME, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        return (
            meta.get("trace_schema") == TRACE_SCHEMA_VERSION
            and integrity.verify_record(meta)
        )

    # ------------------------------------------------------------------ #
    # Writes                                                             #
    # ------------------------------------------------------------------ #

    def put(self, key: str, packed: PackedTrace) -> None:
        """Persist ``packed`` under ``key``; failures warn once.

        Columns are written into a temporary sibling directory
        (``meta.json`` last) which is renamed into place; losing the
        rename race to a concurrent writer is a silent no-op, since the
        winner wrote identical bytes.
        """
        if self._broken:
            return
        entry = self._entry_dir(key)
        if self.has(key):
            return
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            generation = integrity.next_generation()
            tmp = Path(
                tempfile.mkdtemp(
                    dir=entry.parent, prefix=f".{key[:8]}-g{generation}-", suffix=".tmp"
                )
            )
            try:
                fsfaults.crash_point("trace.publish.pre_columns")
                checksums: Dict[str, int] = {}
                for name, column in packed.columns().items():
                    # Serialise to bytes first: the checksum covers the
                    # *intended* bytes, and injected write faults mangle
                    # only what lands on disk.
                    buffer = io.BytesIO()
                    np.save(buffer, np.ascontiguousarray(column), allow_pickle=False)
                    blob = buffer.getvalue()
                    checksums[name] = integrity.crc32_bytes(blob)
                    column_path = tmp / f"{name}.npy"
                    blob = fsfaults.on_write("trace.column.write", column_path, blob)
                    with open(column_path, "wb") as handle:
                        handle.write(blob)
                fsfaults.crash_point("trace.publish.pre_meta")
                meta = integrity.seal_record(
                    {
                        "trace_schema": TRACE_SCHEMA_VERSION,
                        "events": len(packed),
                        "columns": [name for name, _ in TRACE_COLUMNS],
                        "checksums": checksums,
                        "generation": generation,
                    }
                )
                meta_blob = json.dumps(meta).encode("utf-8")
                meta_blob = fsfaults.on_write("trace.meta.write", tmp / META_NAME, meta_blob)
                with open(tmp / META_NAME, "wb") as handle:
                    handle.write(meta_blob)
                fsfaults.crash_point("trace.publish.pre_rename")
                fsfaults.on_rename("trace.entry.rename", entry)
                os.rename(tmp, entry)
                fsfaults.crash_point("trace.publish.post_rename")
            except OSError:
                shutil.rmtree(tmp, ignore_errors=True)
                if self.has(key):
                    return  # lost the publish race; the winner's entry serves
                raise
        except OSError as exc:
            self._broken = True
            warnings.warn(
                f"trace store at {self.directory} is not writable ({exc}); "
                f"traces will be re-captured instead of shared",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self.stats.stores += 1
        _count("trace.store.store")
        fsfaults.damage_published("trace.entry.published", entry)

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for entry in self.directory.glob("*/*"):
            if not entry.is_dir():
                continue
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for entry in self.directory.glob(f"*/*/{META_NAME}"))


# --------------------------------------------------------------------- #
# Process-wide default instance                                         #
# --------------------------------------------------------------------- #

_ACTIVE: Optional[TraceStore] = None
_ACTIVE_DIR: Optional[Path] = None


def active_store() -> Optional[TraceStore]:
    """The process-wide store, or None when caching is disabled.

    Follows the result cache's enablement exactly (``REPRO_NO_CACHE``,
    ``--no-cache``, ``REPRO_CACHE_DIR``), re-resolving the directory from
    the environment on every call so monkeypatched tests and forked
    workers see the configuration without extra plumbing.
    """
    global _ACTIVE, _ACTIVE_DIR
    if diskcache.active_cache() is None:
        return None
    directory = store_root()
    if _ACTIVE is None or _ACTIVE_DIR != directory:
        _ACTIVE = TraceStore(directory=directory)
        _ACTIVE_DIR = directory
    return _ACTIVE
