"""Point-level parallel sweep engine.

The figure/ablation drivers are sweeps over *points* — (workload, mode,
config, seed, scale, params) tuples fed to
:func:`~repro.experiments.common.run_technique`. Running whole experiments
in parallel worker processes wastes most of that structure: Figures 4 and
5 share every LVA run, every point needs the same per-workload precise
baseline, and separate processes share no cache.

This engine flips the unit of parallelism from experiments to points:

1. Drivers declare their points (each driver module exposes
   ``points(small, seed)`` alongside ``run``).
2. The engine **dedupes** points across every requested experiment.
3. The unique *precise baselines* implied by the points run first, fanned
   out over a :class:`~concurrent.futures.ProcessPoolExecutor` — each is
   computed **exactly once** across all workers (the wave barrier, not
   locking, provides the guarantee).
4. The technique points fan out next; workers read the now-warm baselines
   from the shared disk cache (:mod:`~repro.experiments.diskcache`).
5. Results are backfilled into the parent's in-process caches, so the
   drivers afterwards assemble their tables for free.

Because the simulations are deterministic, a table built from engine
results is bit-identical to one built by running the driver alone.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments import common
from repro.sim.tracesim import Mode


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work: a single simulator run, fully specified.

    ``mode=None`` marks a precise-baseline-only point (e.g. Table I's
    precise column, Figure 1's reference run); any technique point
    implies its own precise baseline automatically.
    """

    workload: str
    mode: Optional[Mode] = None
    config: Optional[ApproximatorConfig] = None
    prefetch_degree: int = 4
    seed: int = 0
    small: bool = False
    #: Workload parameter overrides as a sorted items tuple (hashable).
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def is_technique(self) -> bool:
        return self.mode is not None

    def params_dict(self) -> Optional[dict]:
        return dict(self.params) if self.params else None

    def baseline(self) -> "SweepPoint":
        """The precise-baseline point this point depends on."""
        return SweepPoint(
            workload=self.workload,
            seed=self.seed,
            small=self.small,
            params=self.params,
        )


def technique_point(
    workload: str,
    mode: Mode,
    config: Optional[ApproximatorConfig] = None,
    prefetch_degree: int = 4,
    seed: int = 0,
    small: bool = False,
    params: Optional[dict] = None,
) -> SweepPoint:
    """A point mirroring one :func:`common.run_technique` call."""
    return SweepPoint(
        workload=workload,
        mode=mode,
        config=config,
        prefetch_degree=prefetch_degree,
        seed=seed,
        small=small,
        params=tuple(sorted((params or {}).items())),
    )


def precise_point(
    workload: str, seed: int = 0, small: bool = False, params: Optional[dict] = None
) -> SweepPoint:
    """A point mirroring one :func:`common.run_precise_reference` call."""
    return SweepPoint(
        workload=workload,
        seed=seed,
        small=small,
        params=tuple(sorted((params or {}).items())),
    )


# --------------------------------------------------------------------- #
# Worker entry points (module-level for pickling)                       #
# --------------------------------------------------------------------- #


def _counter_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    return {name: after[name] - before[name] for name in after}


def _run_precise_worker(point: SweepPoint):
    """Compute one precise baseline; returns (point, reference, counters).

    Counters are per-task deltas — pool workers are reused across tasks,
    so cumulative values would double-count when aggregated.
    """
    before = common.COMPUTE_COUNTERS.as_dict()
    reference = common.run_precise_reference(
        point.workload, point.seed, point.small, point.params_dict()
    )
    return point, reference, _counter_delta(before, common.COMPUTE_COUNTERS.as_dict())


def _run_technique_worker(point: SweepPoint):
    """Compute one technique point; returns (point, result, counters)."""
    before = common.COMPUTE_COUNTERS.as_dict()
    result = common.run_technique(
        point.workload,
        point.mode,
        config=point.config,
        prefetch_degree=point.prefetch_degree,
        seed=point.seed,
        small=point.small,
        params=point.params_dict(),
    )
    return point, result, _counter_delta(before, common.COMPUTE_COUNTERS.as_dict())


def _backfill_precise(point: SweepPoint, reference) -> None:
    key = (point.workload, point.seed, point.small, point.params)
    common._PRECISE_CACHE[key] = reference


def _backfill_technique(point: SweepPoint, result) -> None:
    key = (
        point.workload,
        point.mode,
        point.config,
        point.prefetch_degree,
        point.seed,
        point.small,
        point.params,
    )
    common._TECHNIQUE_CACHE[key] = result


# --------------------------------------------------------------------- #
# The engine                                                            #
# --------------------------------------------------------------------- #


@dataclass
class SweepReport:
    """What one engine run did — the evidence for its guarantees."""

    requested_points: int = 0
    unique_points: int = 0
    unique_baselines: int = 0
    #: Simulations actually executed, aggregated across all workers (and
    #: the parent, in serial mode). ``precise_computed`` equal to
    #: ``unique_baselines`` on a cold cache is the exactly-once property.
    precise_computed: int = 0
    technique_computed: int = 0
    disk_hits: int = 0
    elapsed: float = 0.0

    def summary(self) -> str:
        return (
            f"sweep: {self.unique_points} unique points "
            f"({self.requested_points} requested), "
            f"{self.unique_baselines} baselines "
            f"({self.precise_computed} computed), "
            f"{self.technique_computed} technique runs, "
            f"{self.disk_hits} disk hits, {self.elapsed:.1f}s"
        )


class SweepEngine:
    """Dedupes and executes sweep points, backfilling the caches.

    One engine instance is built per CLI invocation; :meth:`execute`
    leaves ``common._PRECISE_CACHE`` / ``common._TECHNIQUE_CACHE`` warm in
    the calling process, so driver ``run()`` functions afterwards cost
    only table assembly.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, jobs)
        self.report = SweepReport()

    def execute(self, points: Iterable[SweepPoint]) -> SweepReport:
        """Run every unique point (and implied baseline) exactly once."""
        started = time.time()
        requested = list(points)
        unique: List[SweepPoint] = list(dict.fromkeys(requested))
        baselines: List[SweepPoint] = list(
            dict.fromkeys(point.baseline() for point in unique)
        )
        technique_points = [p for p in unique if p.is_technique]

        report = self.report
        report.requested_points += len(requested)
        report.unique_points += len(unique)
        report.unique_baselines += len(baselines)

        if self.jobs == 1:
            self._execute_serial(baselines, technique_points)
        else:
            self._execute_parallel(baselines, technique_points)

        report.elapsed += time.time() - started
        return report

    # -- serial ---------------------------------------------------------- #

    def _execute_serial(
        self, baselines: Sequence[SweepPoint], technique_points: Sequence[SweepPoint]
    ) -> None:
        before = common.COMPUTE_COUNTERS.as_dict()
        for point in baselines:
            common.run_precise_reference(
                point.workload, point.seed, point.small, point.params_dict()
            )
        for point in technique_points:
            common.run_technique(
                point.workload,
                point.mode,
                config=point.config,
                prefetch_degree=point.prefetch_degree,
                seed=point.seed,
                small=point.small,
                params=point.params_dict(),
            )
        self._absorb_counters(before, common.COMPUTE_COUNTERS.as_dict())

    # -- parallel --------------------------------------------------------- #

    def _execute_parallel(
        self, baselines: Sequence[SweepPoint], technique_points: Sequence[SweepPoint]
    ) -> None:
        """Two waves over one process pool.

        Wave 1 computes each unique baseline in exactly one worker; the
        barrier between waves means wave-2 workers find every baseline in
        the shared disk cache and never recompute one. Without a disk
        cache (``--no-cache``) workers fall back to recomputing baselines
        they need — correct, just slower.
        """
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            self._run_wave(pool, _run_precise_worker, baselines, _backfill_precise)
            self._run_wave(
                pool, _run_technique_worker, technique_points, _backfill_technique
            )

    def _run_wave(self, pool, worker, points: Sequence[SweepPoint], backfill) -> None:
        if not points:
            return
        futures = {pool.submit(worker, point): point for point in points}
        for future in as_completed(futures):
            point, result, counters = future.result()
            backfill(point, result)
            self._absorb_counters(_ZERO_COUNTERS, counters)

    def _absorb_counters(self, before: Dict[str, int], after: Dict[str, int]) -> None:
        report = self.report
        report.precise_computed += after["precise_computed"] - before["precise_computed"]
        report.technique_computed += (
            after["technique_computed"] - before["technique_computed"]
        )
        report.disk_hits += (
            after["precise_disk_hits"]
            - before["precise_disk_hits"]
            + after["technique_disk_hits"]
            - before["technique_disk_hits"]
        )


_ZERO_COUNTERS: Dict[str, int] = {
    "precise_computed": 0,
    "precise_memory_hits": 0,
    "precise_disk_hits": 0,
    "technique_computed": 0,
    "technique_memory_hits": 0,
    "technique_disk_hits": 0,
}


def execute_points(points: Iterable[SweepPoint], jobs: int = 1) -> SweepReport:
    """Convenience wrapper: one engine, one execution."""
    engine = SweepEngine(jobs=jobs)
    return engine.execute(points)
