"""Point-level parallel sweep engine with fault-tolerant supervision.

The figure/ablation drivers are sweeps over *points* — (workload, mode,
config, seed, scale, params) tuples fed to
:func:`~repro.experiments.common.run_technique`. Running whole experiments
in parallel worker processes wastes most of that structure: Figures 4 and
5 share every LVA run, every point needs the same per-workload precise
baseline, and separate processes share no cache.

This engine flips the unit of parallelism from experiments to points:

1. Drivers declare their points (each driver module exposes
   ``points(small, seed)`` alongside ``run``).
2. The engine **dedupes** points across every requested experiment.
3. The unique *precise baselines* implied by the points run first, fanned
   out over a :class:`~concurrent.futures.ProcessPoolExecutor` — each is
   computed **exactly once** across all workers (the wave barrier, not
   locking, provides the guarantee).
4. The technique points fan out next; workers read the now-warm baselines
   from the shared disk cache (:mod:`~repro.experiments.diskcache`).
5. Results are backfilled into the parent's in-process caches, so the
   drivers afterwards assemble their tables for free.

Because the simulations are deterministic, a table built from engine
results is bit-identical to one built by running the driver alone.

**Supervision.** Execution survives partial failure: every point attempt
is bounded by an optional per-point timeout, failed attempts are retried
with exponential backoff and jitter (``retries``), a dead worker
(``BrokenProcessPool``) rebuilds the pool and requeues the in-flight
points, and after ``max_pool_rebuilds`` rebuilds the engine degrades to
serial in-process execution — where even a deterministic crasher is
reduced to a caught exception. A point that exhausts its retries yields
a structured :class:`PointFailure` (and a FAILED table cell via the
in-memory failure placeholders of :mod:`~repro.experiments.common`)
instead of killing the run.

**Checkpoint/resume.** A run journal
(:class:`~repro.experiments.journal.RunJournal`, JSONL beside the disk
cache) records each point's completion or permanent failure as it
happens. An interrupted run — SIGINT/SIGTERM shut the pool down cleanly
and flush the journal — resumes with ``resume=True`` (CLI ``--resume``):
completed points are restored from the disk cache, and only the missing
or previously failed ones are recomputed, converging to a table
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import math
import signal
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.core.config import ApproximatorConfig
from repro.predictors import registry as predictor_registry
from repro.errors import PointTimeoutError
from repro.experiments import common, diskcache, tracestore
from repro.experiments.journal import NullJournal, RunJournal
from repro.fullsystem import FullSystemResult
from repro.sim.tracesim import Mode


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work: a single simulator run, fully specified.

    ``mode=None`` marks a precise-baseline-only point (e.g. Table I's
    precise column, Figure 1's reference run); any technique point
    implies its own precise baseline automatically. ``faults`` is an
    optional memory-fault spec (see :mod:`repro.faults`) applied to the
    technique run — baselines always execute clean.

    ``fullsystem=True`` marks a phase-2 replay point
    (:func:`common.run_fullsystem_point`): the captured trace replays
    through the Table II platform, precisely (``approximate=False``) or
    with per-core LVA (``approximate=True``, degree from ``config``).
    Full-system points depend on their *trace capture* instead of a
    precise phase-1 baseline.
    """

    workload: str
    mode: Optional[Mode] = None
    config: Optional[ApproximatorConfig] = None
    prefetch_degree: int = 4
    seed: int = 0
    small: bool = False
    #: Workload parameter overrides as a sorted items tuple (hashable).
    params: Tuple[Tuple[str, object], ...] = ()
    #: Memory-fault spec for this point ("" = clean).
    faults: str = ""
    #: Phase-2 replay point (see class docstring).
    fullsystem: bool = False
    #: Replay with approximation enabled (full-system points only).
    approximate: bool = False

    @property
    def is_technique(self) -> bool:
        return self.mode is not None and not self.fullsystem

    @property
    def is_fullsystem(self) -> bool:
        return self.fullsystem

    def params_dict(self) -> Optional[dict]:
        return dict(self.params) if self.params else None

    def baseline(self) -> "SweepPoint":
        """The precise-baseline point this point depends on (always clean)."""
        return SweepPoint(
            workload=self.workload,
            seed=self.seed,
            small=self.small,
            params=self.params,
        )

    def describe(self) -> str:
        if self.fullsystem:
            mode = "fullsystem-lva" if self.approximate else "fullsystem-baseline"
        else:
            mode = self.mode.value if self.mode is not None else "precise"
        text = f"{self.workload}/{mode}/seed={self.seed}"
        if self.faults:
            text += f"/faults={self.faults}"
        return text


def technique_point(
    workload: str,
    mode: Mode,
    config: Optional[ApproximatorConfig] = None,
    prefetch_degree: int = 4,
    seed: int = 0,
    small: bool = False,
    params: Optional[dict] = None,
    faults: str = "",
) -> SweepPoint:
    """A point mirroring one :func:`common.run_technique` call."""
    return SweepPoint(
        workload=workload,
        mode=mode,
        config=config,
        prefetch_degree=prefetch_degree,
        seed=seed,
        small=small,
        params=tuple(sorted((params or {}).items())),
        faults=faults,
    )


def precise_point(
    workload: str, seed: int = 0, small: bool = False, params: Optional[dict] = None
) -> SweepPoint:
    """A point mirroring one :func:`common.run_precise_reference` call."""
    return SweepPoint(
        workload=workload,
        seed=seed,
        small=small,
        params=tuple(sorted((params or {}).items())),
    )


def fullsystem_point(
    workload: str,
    config: Optional[ApproximatorConfig] = None,
    approximate: Optional[bool] = None,
    seed: int = 0,
    small: bool = False,
) -> SweepPoint:
    """A point mirroring one :func:`common.run_fullsystem_point` call.

    ``approximate`` defaults to whether a config was given (a configured
    replay is an LVA replay; a bare one is the precise baseline).
    """
    return SweepPoint(
        workload=workload,
        config=config,
        seed=seed,
        small=small,
        fullsystem=True,
        approximate=config is not None if approximate is None else approximate,
    )


# --------------------------------------------------------------------- #
# Point identity                                                        #
# --------------------------------------------------------------------- #


def _point_fault_spec(point: SweepPoint) -> str:
    """The canonical memory-fault spec this point's run will see."""
    with faults.memory_faults(point.faults):
        return faults.active_memory_spec()


def point_disk_key(point: SweepPoint) -> str:
    """The disk-cache (and journal) key of one sweep point."""
    if point.fullsystem:
        return common.fullsystem_disk_key(
            point.workload,
            point.approximate,
            point.config,
            point.seed,
            point.small,
        )
    if point.is_technique:
        return common.technique_disk_key(
            point.workload,
            point.mode,
            point.config,
            point.prefetch_degree,
            point.seed,
            point.small,
            point.params,
            _point_fault_spec(point),
            predictor_registry.active_override(point.mode.value),
        )
    return common._precise_disk_key(
        point.workload, point.seed, point.small, point.params
    )


def capture_key(point: SweepPoint) -> str:
    """The trace-store key of the capture a full-system point depends on."""
    return common.trace_disk_key(point.workload, point.seed, point.small)


# --------------------------------------------------------------------- #
# Worker entry points (module-level for pickling)                       #
# --------------------------------------------------------------------- #


def _counter_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    return {name: after[name] - before[name] for name in after}


def _run_precise_worker(point: SweepPoint, attempt: int = 0):
    """Compute one precise baseline; returns (point, reference, counters).

    Counters are per-task deltas — pool workers are reused across tasks,
    so cumulative values would double-count when aggregated.
    """
    faults.before_point(
        "precise", point.workload, None, point.seed, point.small, attempt=attempt
    )
    before = common.COMPUTE_COUNTERS.as_dict()
    tracer = telemetry.tracer()
    if tracer is None:
        reference = common.run_precise_reference(
            point.workload, point.seed, point.small, point.params_dict()
        )
    else:
        tracer.emit(
            "sweep.point.running",
            point=point.describe(),
            kind="precise",
            attempt=attempt,
        )
        with tracer.span("sweep.point", point=point.describe(), kind="precise"):
            reference = common.run_precise_reference(
                point.workload, point.seed, point.small, point.params_dict()
            )
    return point, reference, _counter_delta(before, common.COMPUTE_COUNTERS.as_dict())


def _run_technique_worker(point: SweepPoint, attempt: int = 0):
    """Compute one technique point; returns (point, result, counters)."""
    faults.before_point(
        "technique",
        point.workload,
        point.mode.value if point.mode is not None else None,
        point.seed,
        point.small,
        config=point.config,
        attempt=attempt,
    )
    before = common.COMPUTE_COUNTERS.as_dict()
    tracer = telemetry.tracer()
    if tracer is not None:
        tracer.emit(
            "sweep.point.running",
            point=point.describe(),
            kind="technique",
            attempt=attempt,
        )
    with faults.memory_faults(point.faults):
        if tracer is None:
            result = common.run_technique(
                point.workload,
                point.mode,
                config=point.config,
                prefetch_degree=point.prefetch_degree,
                seed=point.seed,
                small=point.small,
                params=point.params_dict(),
            )
        else:
            with tracer.span(
                "sweep.point", point=point.describe(), kind="technique"
            ):
                result = common.run_technique(
                    point.workload,
                    point.mode,
                    config=point.config,
                    prefetch_degree=point.prefetch_degree,
                    seed=point.seed,
                    small=point.small,
                    params=point.params_dict(),
                )
    return point, result, _counter_delta(before, common.COMPUTE_COUNTERS.as_dict())


def _run_capture_worker(point: SweepPoint, attempt: int = 0):
    """Capture (or store-hit) one trace; returns (point, events, counters).

    The pre-capture wave of a full-system sweep: after this task the
    trace store holds the packed columns, so every replay worker
    memory-maps them instead of re-running the workload.
    """
    faults.before_point(
        "capture", point.workload, None, point.seed, point.small, attempt=attempt
    )
    before = common.COMPUTE_COUNTERS.as_dict()
    tracer = telemetry.tracer()
    if tracer is None:
        trace = common.capture_trace(point.workload, point.seed, point.small)
    else:
        tracer.emit(
            "sweep.point.running",
            point=point.describe(),
            kind="capture",
            attempt=attempt,
        )
        with tracer.span("sweep.point", point=point.describe(), kind="capture"):
            trace = common.capture_trace(point.workload, point.seed, point.small)
    return point, len(trace), _counter_delta(before, common.COMPUTE_COUNTERS.as_dict())


def _run_fullsystem_worker(point: SweepPoint, attempt: int = 0):
    """Compute one full-system replay; returns (point, result, counters)."""
    faults.before_point(
        "fullsystem",
        point.workload,
        "lva" if point.approximate else "baseline",
        point.seed,
        point.small,
        config=point.config,
        attempt=attempt,
    )
    before = common.COMPUTE_COUNTERS.as_dict()
    tracer = telemetry.tracer()
    if tracer is None:
        result = common.run_fullsystem_point(
            point.workload,
            approximate=point.approximate,
            approximator=point.config,
            seed=point.seed,
            small=point.small,
        )
    else:
        tracer.emit(
            "sweep.point.running",
            point=point.describe(),
            kind="fullsystem",
            attempt=attempt,
        )
        with tracer.span("sweep.point", point=point.describe(), kind="fullsystem"):
            result = common.run_fullsystem_point(
                point.workload,
                approximate=point.approximate,
                approximator=point.config,
                seed=point.seed,
                small=point.small,
            )
    return point, result, _counter_delta(before, common.COMPUTE_COUNTERS.as_dict())


# Baseline-only identity: precise runs are independent of the technique
# fields (mode/config/prefetch_degree) and always execute clean (faults).
def _precise_cache_key(point: SweepPoint) -> tuple:  # lva: ignore[LVA002]
    return (point.workload, point.seed, point.small, point.params)


def _technique_cache_key(point: SweepPoint) -> tuple:  # lva: ignore[LVA002]
    return (
        point.workload,
        point.mode,
        point.config,
        point.prefetch_degree,
        point.seed,
        point.small,
        point.params,
        _point_fault_spec(point),
        predictor_registry.active_override(point.mode.value),
    )


# Replay identity: the in-process key of common.run_fullsystem_point
# (captures are precise and clean, so no mode/prefetch/fault components).
def _fullsystem_cache_key(point: SweepPoint) -> tuple:  # lva: ignore[LVA002]
    return (
        point.workload,
        point.approximate,
        point.config,
        point.seed,
        point.small,
    )


def _backfill_precise(point: SweepPoint, reference) -> None:
    common._PRECISE_CACHE[_precise_cache_key(point)] = reference


def _backfill_technique(point: SweepPoint, result) -> None:
    common._TECHNIQUE_CACHE[_technique_cache_key(point)] = result


def _backfill_fullsystem(point: SweepPoint, result) -> None:
    common._FULLSYSTEM_CACHE[_fullsystem_cache_key(point)] = result


# --------------------------------------------------------------------- #
# Supervision records                                                   #
# --------------------------------------------------------------------- #


@dataclass
class PointFailure:
    """One sweep point that exhausted its retries — the run survived it."""

    point: SweepPoint
    kind: str  # "precise" | "technique" | "capture" | "fullsystem"
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        return (
            f"{self.point.describe()} [{self.kind}]: {self.error_type}: "
            f"{self.message} (after {self.attempts} attempt(s))"
        )


@dataclass
class _Task:
    """Mutable supervision state for one point."""

    point: SweepPoint
    kind: str
    key: str
    attempts: int = 0
    #: ``time.monotonic()`` at the start of the current attempt (0 = unset).
    started: float = 0.0

    @property
    def worker(self):
        return _WORKERS[self.kind]


_WORKERS = {
    "precise": _run_precise_worker,
    "technique": _run_technique_worker,
    "capture": _run_capture_worker,
    "fullsystem": _run_fullsystem_worker,
}


def _sigterm_to_interrupt(signum, frame):
    raise KeyboardInterrupt("SIGTERM")


def _pool_worker_init() -> None:
    """Reset SIGTERM in pool workers.

    Forked workers inherit the parent's SIGTERM→KeyboardInterrupt
    handler; a pool-rebuild ``terminate()`` would then raise inside the
    worker and spray tracebacks instead of just dying.
    """
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass


# --------------------------------------------------------------------- #
# The engine                                                            #
# --------------------------------------------------------------------- #


@dataclass
class SweepReport:
    """What one engine run did — the evidence for its guarantees."""

    requested_points: int = 0
    unique_points: int = 0
    unique_baselines: int = 0
    #: Simulations actually executed, aggregated across all workers (and
    #: the parent, in serial mode). ``precise_computed`` equal to
    #: ``unique_baselines`` on a cold cache is the exactly-once property.
    precise_computed: int = 0
    technique_computed: int = 0
    #: Full-system replays actually executed (vs served from a cache).
    fullsystem_computed: int = 0
    #: Workload executions performed to capture a phase-2 trace. Zero on
    #: a warm trace store — the acceptance signal that sweep workers
    #: shared bytes instead of re-running workloads.
    traces_captured: int = 0
    #: Traces served from the memory-mapped trace store.
    trace_store_hits: int = 0
    disk_hits: int = 0
    elapsed: float = 0.0
    #: Points restored from the journal + disk cache by ``resume``.
    resumed_points: int = 0
    #: Attempts rescheduled after a failure (each backs off with jitter).
    retried_attempts: int = 0
    #: Times the worker pool was torn down and rebuilt.
    pool_rebuilds: int = 0
    #: Attempts abandoned for exceeding the per-point timeout.
    timeouts: int = 0
    #: Points that exhausted their retries (rendered as FAILED cells).
    failures: List[PointFailure] = field(default_factory=list)

    def summary(self) -> str:
        text = (
            f"sweep: {self.unique_points} unique points "
            f"({self.requested_points} requested), "
            f"{self.unique_baselines} baselines "
            f"({self.precise_computed} computed), "
            f"{self.technique_computed} technique runs, "
            f"{self.disk_hits} disk hits, {self.elapsed:.1f}s"
        )
        if self.fullsystem_computed or self.traces_captured or self.trace_store_hits:
            text += (
                f", {self.fullsystem_computed} replays, "
                f"{self.traces_captured} traces captured "
                f"({self.trace_store_hits} store hits)"
            )
        extras = []
        if self.resumed_points:
            extras.append(f"{self.resumed_points} resumed")
        if self.retried_attempts:
            extras.append(f"{self.retried_attempts} retried")
        if self.timeouts:
            extras.append(f"{self.timeouts} timeouts")
        if self.pool_rebuilds:
            extras.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.failures:
            extras.append(f"{len(self.failures)} FAILED")
        if extras:
            text += " [" + ", ".join(extras) + "]"
        return text


class SweepEngine:
    """Dedupes and executes sweep points, backfilling the caches.

    One engine instance is built per CLI invocation; :meth:`execute`
    leaves ``common._PRECISE_CACHE`` / ``common._TECHNIQUE_CACHE`` warm in
    the calling process, so driver ``run()`` functions afterwards cost
    only table assembly. ``retries``/``point_timeout``/``resume``
    configure the supervision layer (see the module docstring).
    """

    def __init__(
        self,
        jobs: int = 1,
        retries: int = 0,
        point_timeout: Optional[float] = None,
        resume: bool = False,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        max_pool_rebuilds: int = 3,
        jitter_seed: int = 0,
    ) -> None:
        self.jobs = max(1, jobs)
        self.retries = max(0, retries)
        self.point_timeout = point_timeout if point_timeout and point_timeout > 0 else None
        self.resume = resume
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_pool_rebuilds = max(0, max_pool_rebuilds)
        self.report = SweepReport()
        self.jitter_seed = jitter_seed
        self._seq = itertools.count()
        self._serial_fallback = False
        self._failed_baseline_keys: set = set()
        self._old_sigterm = None

    # -- public entry ---------------------------------------------------- #

    def execute(self, points: Iterable[SweepPoint]) -> SweepReport:
        """Run every unique point (and implied dependency) exactly once.

        Wave 1 runs the unique precise baselines implied by the phase-1
        points **and** the unique trace captures implied by the
        full-system points (each capture publishes its packed columns to
        the shared trace store). Wave 2 fans out the technique and
        replay points; their workers read the warm baselines from the
        disk cache and memory-map the warm traces zero-copy.
        """
        started = time.time()
        requested = list(points)
        unique: List[SweepPoint] = list(dict.fromkeys(requested))
        baselines: List[SweepPoint] = list(
            dict.fromkeys(point.baseline() for point in unique if not point.fullsystem)
        )
        technique_points = [p for p in unique if p.is_technique]
        fullsystem_points = [p for p in unique if p.is_fullsystem]
        # Pre-capture only pays off when workers can share the result:
        # without the trace store each process keeps its own LRU anyway.
        captures: List[SweepPoint] = []
        if fullsystem_points and tracestore.active_store() is not None:
            seen: Dict[str, SweepPoint] = {}
            for point in fullsystem_points:
                seen.setdefault(capture_key(point), point)
            captures = list(seen.values())

        report = self.report
        report.requested_points += len(requested)
        report.unique_points += len(unique)
        report.unique_baselines += len(baselines)

        baseline_tasks = [
            _Task(point, "precise", point_disk_key(point)) for point in baselines
        ]
        capture_tasks = [
            _Task(point, "capture", capture_key(point)) for point in captures
        ]
        technique_tasks = [
            _Task(point, "technique", point_disk_key(point))
            for point in technique_points
        ]
        fullsystem_tasks = [
            _Task(point, "fullsystem", point_disk_key(point))
            for point in fullsystem_points
        ]

        tracer = telemetry.tracer()
        all_tasks = baseline_tasks + capture_tasks + technique_tasks + fullsystem_tasks
        if tracer is not None:
            for task in all_tasks:
                tracer.emit(
                    "sweep.point.queued", point=task.point.describe(), kind=task.kind
                )
        journal = self._open_journal(all_tasks)
        self._install_signal_handler()
        try:
            if self.resume:
                baseline_tasks = self._restore_completed(baseline_tasks, journal)
                capture_tasks = self._restore_completed(capture_tasks, journal)
                technique_tasks = self._restore_completed(technique_tasks, journal)
                fullsystem_tasks = self._restore_completed(fullsystem_tasks, journal)
            self._run_wave(baseline_tasks + capture_tasks, journal)
            technique_tasks = self._fail_orphaned(technique_tasks, journal)
            fullsystem_tasks = self._fail_orphaned(fullsystem_tasks, journal)
            self._run_wave(technique_tasks + fullsystem_tasks, journal)
        finally:
            self._restore_signal_handler()
            journal.close()

        report.elapsed += time.time() - started
        self._emit_summary(report)
        return report

    # -- journal --------------------------------------------------------- #

    def _open_journal(self, tasks: Sequence[_Task]):
        """A journal beside the disk cache; a no-op one without a cache.

        Without the content-addressed disk cache there is nowhere to
        restore completed results from, so checkpointing is disabled
        rather than half-working.
        """
        if diskcache.active_cache() is None:
            return NullJournal()
        return RunJournal.for_keys([t.key for t in tasks], resume=self.resume)

    def _restore_completed(self, tasks: List[_Task], journal) -> List[_Task]:
        """Serve journal-completed points from the disk cache; keep the rest.

        A ``done`` record whose cache entry has vanished (evicted,
        corrupted, cleared) silently demotes the point back to pending —
        the journal is bookkeeping, the cache is the source of results.
        Previously *failed* points are always retried on resume.
        """
        disk = diskcache.active_cache()
        remaining: List[_Task] = []
        for task in tasks:
            if task.key in journal.done and self._restore_one(task, disk):
                self.report.resumed_points += 1
                continue
            remaining.append(task)
        return remaining

    def _restore_one(self, task: _Task, disk) -> bool:
        """Restore one journal-completed task from its persistent layer."""
        if task.kind == "capture":
            store = tracestore.active_store()
            return store is not None and store.has(task.key)
        if disk is None:
            return False
        stored = disk.get(task.key)
        if task.kind == "precise" and isinstance(stored, common.PreciseReference):
            _backfill_precise(task.point, stored)
            return True
        if task.kind == "technique" and isinstance(stored, common.TechniqueResult):
            _backfill_technique(task.point, stored)
            return True
        if task.kind == "fullsystem" and isinstance(stored, FullSystemResult):
            _backfill_fullsystem(task.point, stored)
            return True
        return False

    # -- wave orchestration ---------------------------------------------- #

    def _run_wave(self, tasks: Sequence[_Task], journal) -> None:
        if not tasks:
            return
        if self.jobs == 1 or self._serial_fallback:
            self._run_serial(tasks, journal)
        else:
            self._run_supervised(list(tasks), journal)

    def _fail_orphaned(self, tasks: List[_Task], journal) -> List[_Task]:
        """Pre-fail wave-2 points whose dependency permanently failed.

        A technique point depends on its precise baseline; a full-system
        point on its trace capture. Their workers would only rediscover
        the failure (against a placeholder) the slow and confusing way.
        """
        if not self._failed_baseline_keys:
            return tasks
        remaining: List[_Task] = []
        for task in tasks:
            if task.kind == "fullsystem":
                dependency_key = capture_key(task.point)
                error_type, message = (
                    "CaptureFailed",
                    "trace capture for this point failed",
                )
            else:
                dependency_key = point_disk_key(task.point.baseline())
                error_type, message = (
                    "BaselineFailed",
                    "precise baseline for this point failed",
                )
            if dependency_key in self._failed_baseline_keys:
                failure = PointFailure(
                    point=task.point,
                    kind=task.kind,
                    error_type=error_type,
                    message=message,
                    attempts=0,
                )
                self._register_failure(task, failure, journal)
            else:
                remaining.append(task)
        return remaining

    # -- serial execution ------------------------------------------------- #

    def _run_serial(self, tasks: Sequence[_Task], journal) -> None:
        """In-process execution with the same retry/failure envelope.

        Also the degradation target after repeated pool failures: an
        injected worker crash raises in-process here (see
        :func:`repro.faults.before_point`) and becomes a PointFailure.
        """
        for task in tasks:
            while True:
                task.started = time.monotonic()
                try:
                    _, result, counters = task.worker(task.point, task.attempts)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    task.attempts += 1
                    if task.attempts <= self.retries:
                        self.report.retried_attempts += 1
                        time.sleep(self._backoff_delay(task.attempts, task.key))
                        continue
                    self._record_failure(task, exc, journal)
                    break
                else:
                    self._record_success(task, result, counters, journal)
                    break

    # -- supervised pool execution ---------------------------------------- #

    def _run_supervised(self, tasks: List[_Task], journal) -> None:
        """The fault-tolerant parallel loop.

        In-flight submissions are capped at the worker count, so a
        submitted future starts (approximately) immediately and its
        submission time is an honest start-of-attempt clock for the
        per-point timeout.
        """
        pending: deque = deque(tasks)
        retry_heap: List[Tuple[float, int, _Task]] = []
        inflight: Dict[object, Tuple[_Task, float]] = {}
        pool: Optional[ProcessPoolExecutor] = self._new_pool()
        clean_exit = False
        try:
            while pending or retry_heap or inflight:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    pending.append(heapq.heappop(retry_heap)[2])

                while pending and len(inflight) < self.jobs:
                    task = pending.popleft()
                    task.started = time.monotonic()
                    try:
                        future = pool.submit(task.worker, task.point, task.attempts)
                    except BrokenExecutor:
                        pending.appendleft(task)
                        pool = self._recover_pool(pool, inflight, pending)
                        if pool is None:
                            self._drain_serial(pending, retry_heap, journal)
                            clean_exit = True
                            return
                        continue
                    deadline = (
                        now + self.point_timeout if self.point_timeout else math.inf
                    )
                    inflight[future] = (task, deadline)

                if not inflight:
                    if pending:
                        continue
                    if retry_heap:
                        time.sleep(
                            min(0.2, max(0.0, retry_heap[0][0] - time.monotonic()))
                        )
                        continue
                    break

                wait_timeout = self._wait_timeout(inflight, retry_heap)
                done, _ = futures_wait(
                    set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )

                pool_broke = False
                for future in done:
                    task, _ = inflight.pop(future)
                    try:
                        _, result, counters = future.result()
                    except BrokenExecutor:
                        # The pool died under this task; which process
                        # crashed is unknowable, so the task is requeued
                        # uncharged — the rebuild limit, not the retry
                        # budget, bounds a deterministic crasher.
                        pending.appendleft(task)
                        pool_broke = True
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        self._attempt_failed(task, exc, retry_heap, journal)
                    else:
                        self._record_success(task, result, counters, journal)

                if pool_broke:
                    pool = self._recover_pool(pool, inflight, pending)
                    if pool is None:
                        self._drain_serial(pending, retry_heap, journal)
                        clean_exit = True
                        return
                    continue

                if self.point_timeout:
                    pool = self._reap_timeouts(
                        pool, inflight, pending, retry_heap, journal
                    )
                    if pool is None:
                        self._drain_serial(pending, retry_heap, journal)
                        clean_exit = True
                        return
            clean_exit = True
        finally:
            if pool is not None:
                self._shutdown_pool(pool, kill=not clean_exit)

    def _wait_timeout(
        self, inflight: Dict, retry_heap: List
    ) -> Optional[float]:
        now = time.monotonic()
        candidates = []
        next_deadline = min(deadline for _, deadline in inflight.values())
        if next_deadline < math.inf:
            candidates.append(next_deadline - now)
        if retry_heap:
            candidates.append(retry_heap[0][0] - now)
        if not candidates:
            return None
        return max(0.01, min(candidates))

    def _reap_timeouts(
        self, pool, inflight: Dict, pending: deque, retry_heap: List, journal
    ):
        """Abandon overdue attempts; the hung worker forces a pool rebuild.

        A hung worker cannot be cancelled through the executor API, so
        the whole pool is killed: overdue tasks are charged a failed
        attempt, innocent in-flight tasks are requeued uncharged.
        Returns the replacement pool, or None when the rebuild budget is
        exhausted (degrade to serial).
        """
        now = time.monotonic()
        if not any(deadline <= now for _, deadline in inflight.values()):
            return pool
        for future, (task, deadline) in list(inflight.items()):
            if deadline <= now:
                self.report.timeouts += 1
                exc = PointTimeoutError(
                    f"{task.point.describe()} exceeded --point-timeout "
                    f"({self.point_timeout:g}s)"
                )
                self._attempt_failed(task, exc, retry_heap, journal)
            else:
                pending.appendleft(task)
        inflight.clear()
        return self._rebuild_or_degrade(pool)

    def _recover_pool(self, pool, inflight: Dict, pending: deque):
        """After BrokenProcessPool: requeue everything in flight, rebuild."""
        for task, _ in inflight.values():
            pending.appendleft(task)
        inflight.clear()
        return self._rebuild_or_degrade(pool)

    def _rebuild_or_degrade(self, pool):
        tracer = telemetry.tracer()
        if tracer is not None:
            tracer.emit("sweep.pool.rebuild", count=self.report.pool_rebuilds + 1)
        self.report.pool_rebuilds += 1
        self._shutdown_pool(pool, kill=True)
        if self.report.pool_rebuilds > self.max_pool_rebuilds:
            self._serial_fallback = True
            return None
        return self._new_pool()

    def _drain_serial(self, pending: deque, retry_heap: List, journal) -> None:
        """Finish the wave in-process after giving up on pools."""
        remaining = list(pending) + [task for _, _, task in retry_heap]
        pending.clear()
        retry_heap.clear()
        self._run_serial(remaining, journal)

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_pool_worker_init
        )

    @staticmethod
    def _shutdown_pool(pool, kill: bool) -> None:
        """Shut a pool down; ``kill`` also terminates hung workers.

        Reaches into ``_processes`` because the executor API offers no
        way to reclaim a worker stuck in an injected (or real) hang.
        """
        if kill:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    # -- attempt bookkeeping ---------------------------------------------- #

    def _backoff_delay(self, attempt: int, key: str = "") -> float:
        """Exponential backoff with multiplicative jitter in [0.5, 1.5).

        The jitter fraction is a pure hash of (jitter_seed, point key,
        attempt number) rather than a draw from a shared RNG stream, so
        a given point's retry schedule is identical regardless of the
        completion order of every other point — reproducible under
        ``--inject flaky`` even with a racing pool.
        """
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        digest = hashlib.sha256(
            f"{self.jitter_seed};{key};{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0**64
        return delay * (0.5 + fraction)

    def _attempt_failed(self, task: _Task, exc: Exception, retry_heap, journal) -> None:
        task.attempts += 1
        if task.attempts <= self.retries:
            self.report.retried_attempts += 1
            tracer = telemetry.tracer()
            if tracer is not None:
                tracer.emit(
                    "sweep.point.retry",
                    point=task.point.describe(),
                    kind=task.kind,
                    attempt=task.attempts,
                    error=type(exc).__name__,
                )
            eligible = time.monotonic() + self._backoff_delay(task.attempts, task.key)
            heapq.heappush(retry_heap, (eligible, next(self._seq), task))
        else:
            self._record_failure(task, exc, journal)

    def _record_success(self, task: _Task, result, counters, journal) -> None:
        if task.kind == "precise":
            _backfill_precise(task.point, result)
        elif task.kind == "technique":
            _backfill_technique(task.point, result)
        elif task.kind == "fullsystem":
            _backfill_fullsystem(task.point, result)
        # "capture": the trace store entry *is* the artifact; nothing to
        # backfill in the parent beyond the counters.
        self._absorb_counters(_ZERO_COUNTERS, counters)
        journal.record_done(task.kind, task.key)
        if telemetry.enabled():
            wall = time.monotonic() - task.started if task.started else 0.0
            telemetry.metrics().histogram("sweep.point.wall_s").observe(wall)
            tracer = telemetry.tracer()
            if tracer is not None:
                tracer.emit(
                    "sweep.point.done",
                    point=task.point.describe(),
                    kind=task.kind,
                    wall_s=round(wall, 6),
                )

    def _record_failure(self, task: _Task, exc: Exception, journal) -> None:
        failure = PointFailure(
            point=task.point,
            kind=task.kind,
            error_type=type(exc).__name__,
            message=str(exc) or type(exc).__name__,
            attempts=max(1, task.attempts),
        )
        self._register_failure(task, failure, journal)

    def _register_failure(self, task: _Task, failure: PointFailure, journal) -> None:
        tracer = telemetry.tracer()
        if tracer is not None:
            tracer.emit(
                "sweep.point.failed",
                point=task.point.describe(),
                kind=task.kind,
                error=failure.error_type,
                attempts=failure.attempts,
            )
        self.report.failures.append(failure)
        message = f"{failure.error_type}: {failure.message}"
        if task.kind == "precise":
            _backfill_precise(task.point, common.failed_precise_reference(message))
            self._failed_baseline_keys.add(task.key)
        elif task.kind == "capture":
            # Dependents are pre-failed by _fail_orphaned; their FAILED
            # placeholders carry the render-path NaNs.
            self._failed_baseline_keys.add(task.key)
        elif task.kind == "fullsystem":
            _backfill_fullsystem(task.point, common.failed_fullsystem_result(message))
        else:
            _backfill_technique(task.point, common.failed_technique_result(message))
        journal.record_failed(
            task.kind, task.key, failure.error_type, failure.message, failure.attempts
        )

    def _emit_summary(self, report: SweepReport) -> None:
        """Publish the run report to the trace and metrics registry."""
        if not telemetry.enabled():
            return
        registry = telemetry.metrics()
        registry.gauge("sweep.unique_points").set(report.unique_points)
        registry.gauge("sweep.precise_computed").set(report.precise_computed)
        registry.gauge("sweep.technique_computed").set(report.technique_computed)
        registry.gauge("sweep.fullsystem_computed").set(report.fullsystem_computed)
        registry.gauge("sweep.traces_captured").set(report.traces_captured)
        registry.gauge("sweep.trace_store_hits").set(report.trace_store_hits)
        registry.gauge("sweep.disk_hits").set(report.disk_hits)
        registry.gauge("sweep.failures").set(len(report.failures))
        registry.gauge("sweep.elapsed_s").set(report.elapsed)
        tracer = telemetry.tracer()
        if tracer is not None:
            tracer.emit(
                "sweep.summary",
                elapsed_s=round(report.elapsed, 6),
                unique_points=report.unique_points,
                baselines=report.unique_baselines,
                precise_computed=report.precise_computed,
                technique_computed=report.technique_computed,
                fullsystem_computed=report.fullsystem_computed,
                traces_captured=report.traces_captured,
                trace_store_hits=report.trace_store_hits,
                disk_hits=report.disk_hits,
                retried=report.retried_attempts,
                timeouts=report.timeouts,
                pool_rebuilds=report.pool_rebuilds,
                failed=len(report.failures),
            )

    # -- signals ---------------------------------------------------------- #

    def _install_signal_handler(self) -> None:
        """Fold SIGTERM into the KeyboardInterrupt shutdown path."""
        self._old_sigterm = None
        if threading.current_thread() is threading.main_thread():
            try:
                self._old_sigterm = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
            except (ValueError, OSError):
                self._old_sigterm = None

    def _restore_signal_handler(self) -> None:
        if self._old_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, self._old_sigterm)
            except (ValueError, OSError):
                pass
            self._old_sigterm = None

    # -- counters ---------------------------------------------------------- #

    def _absorb_counters(self, before: Dict[str, int], after: Dict[str, int]) -> None:
        report = self.report
        report.precise_computed += after["precise_computed"] - before["precise_computed"]
        report.technique_computed += (
            after["technique_computed"] - before["technique_computed"]
        )
        report.fullsystem_computed += (
            after["fullsystem_computed"] - before["fullsystem_computed"]
        )
        report.traces_captured += after["traces_captured"] - before["traces_captured"]
        report.trace_store_hits += (
            after["trace_store_hits"] - before["trace_store_hits"]
        )
        report.disk_hits += (
            after["precise_disk_hits"]
            - before["precise_disk_hits"]
            + after["technique_disk_hits"]
            - before["technique_disk_hits"]
            + after["fullsystem_disk_hits"]
            - before["fullsystem_disk_hits"]
        )


_ZERO_COUNTERS: Dict[str, int] = common.ComputeCounters().as_dict()


def execute_points(points: Iterable[SweepPoint], jobs: int = 1, **kwargs) -> SweepReport:
    """Convenience wrapper: one engine, one execution."""
    engine = SweepEngine(jobs=jobs, **kwargs)
    return engine.execute(points)


def execute_point(point: SweepPoint):
    """Compute one point in-process, warming the result caches.

    The :meth:`repro.experiments.common.ExperimentDriver.run_point`
    implementation: same compute (and cache/telemetry) path as a sweep
    worker, minus the supervision envelope. Returns the
    :class:`~repro.experiments.common.PreciseReference` or
    :class:`~repro.experiments.common.TechniqueResult`.
    """
    if point.is_fullsystem:
        _, result, _ = _run_fullsystem_worker(point)
    elif point.is_technique:
        _, result, _ = _run_technique_worker(point)
    else:
        _, result, _ = _run_precise_worker(point)
    return result
