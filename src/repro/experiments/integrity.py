"""Content-integrity primitives shared by the storage layer.

DiskCache entries, TraceStore columns and journal records all carry
checksums so that silent on-disk damage — bit rot, a lost fsync, a
crash-truncated file — is *detected* on read instead of replayed into
results. The policy everywhere is the same: a failed check degrades to a
warn-once + ``storage.corrupt.<subsystem>`` telemetry counter and the
entry heals as a miss (or is quarantined by ``lva-fsck``); a wrong
result is never served.

Three things live here:

* **framing** for single-blob artifacts (cache entries): a fixed magic,
  a CRC32 and the payload length prefix the pickle bytes, so torn,
  zero-filled and bit-flipped blobs all fail closed
  (:func:`frame`/:func:`unframe`);
* **record checksums** for JSON artifacts (journal lines, trace meta):
  CRC32 over the canonical ``sort_keys`` serialisation minus the
  ``crc`` field itself (:func:`seal_record`/:func:`verify_record`);
* **corruption reporting** (:func:`report_corruption`) and the
  generation stamp for atomic publishes (:func:`next_generation`).

This module deliberately imports nothing from the storage modules so it
can sit below all three.
"""

from __future__ import annotations

import errno
import itertools
import json
import os
import struct
import sys
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Set, Union

from repro.envspec import STORE_VERIFY_ENV

PathLike = Union[str, "os.PathLike[str]"]

#: Magic prefixing every framed cache entry. The trailing byte is the
#: cache schema generation of the *frame format* (not the entry schema,
#: which lives inside the payload): legacy raw-pickle entries fail the
#: magic check and are reported as schema-mismatch, not corruption.
MAGIC = b"LVAC\x02\n"

#: ``<magic><crc32 u32 le><payload length u32 le>``
_HEADER = struct.Struct("<II")

#: Env var disabling verify-on-read (checksums are always *written*);
#: declared (with its cache-key classification) in :mod:`repro.envspec`.
VERIFY_ENV = STORE_VERIFY_ENV


class IntegrityError(ValueError):
    """A framed blob or sealed record failed its integrity check.

    ``reason`` is one of ``"magic"`` (wrong/old frame format),
    ``"length"`` (torn blob: fewer payload bytes than the header
    promises) or ``"checksum"`` (bytes present but damaged).
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"integrity check failed ({reason})" + (f": {detail}" if detail else ""))
        self.reason = reason


def verify_enabled() -> bool:
    """Whether verify-on-read is active (default yes; ``0`` disables)."""
    return os.environ.get(VERIFY_ENV, "1") != "0"


# --------------------------------------------------------------------- #
# Blob framing (cache entries)                                          #
# --------------------------------------------------------------------- #


def crc32_bytes(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def crc32_file(path: PathLike, chunk_size: int = 1 << 20) -> int:
    """CRC32 of a file's contents, chunked so mmapped columns stay cheap."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in the magic + CRC32 + length header."""
    return MAGIC + _HEADER.pack(crc32_bytes(payload), len(payload)) + payload


def unframe(blob: bytes) -> bytes:
    """Strip and verify the frame; raises :class:`IntegrityError`."""
    header_end = len(MAGIC) + _HEADER.size
    if len(blob) < header_end or not blob.startswith(MAGIC):
        raise IntegrityError("magic", "not a framed entry")
    crc, length = _HEADER.unpack(blob[len(MAGIC) : header_end])
    payload = blob[header_end:]
    if len(payload) != length:
        raise IntegrityError("length", f"expected {length} payload bytes, found {len(payload)}")
    if crc32_bytes(payload) != crc:
        raise IntegrityError("checksum", "payload bytes do not match recorded CRC32")
    return payload


# --------------------------------------------------------------------- #
# Record checksums (journal lines, trace meta)                          #
# --------------------------------------------------------------------- #


def record_crc(record: Dict[str, Any]) -> int:
    """CRC32 of a JSON record's canonical form, ignoring its ``crc``."""
    body = {k: v for k, v in record.items() if k != "crc"}
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return crc32_bytes(encoded)


def seal_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``record`` with its ``crc`` field (re)computed."""
    sealed = dict(record)
    sealed["crc"] = record_crc(record)
    return sealed


def verify_record(record: Dict[str, Any]) -> bool:
    """Whether a sealed record's ``crc`` matches its contents."""
    stored = record.get("crc")
    return isinstance(stored, int) and stored == record_crc(record)


# --------------------------------------------------------------------- #
# Corruption reporting                                                  #
# --------------------------------------------------------------------- #

_WARNED: Set[str] = set()


def report_corruption(subsystem: str, path: PathLike, reason: str) -> None:
    """Count + warn-once that a storage artifact failed verification.

    ``subsystem`` is ``cache``/``trace``/``journal``; the counter is
    ``storage.corrupt.<subsystem>`` and the stderr warning fires once
    per subsystem per process (individual paths go to the trace stream,
    which is cheap and append-only).
    """
    from repro import telemetry

    if telemetry.enabled():
        telemetry.metrics().counter(f"storage.corrupt.{subsystem}").add(1)
    tracer = telemetry.tracer()
    if tracer is not None:
        tracer.emit("storage.corrupt", subsystem=subsystem, path=str(path), reason=reason)
    if subsystem not in _WARNED:
        _WARNED.add(subsystem)
        print(
            f"repro: warning: corrupt {subsystem} entry detected ({reason}): {path} "
            f"— healing as a miss; run lva-fsck for a full scan",
            file=sys.stderr,
        )


def reset_warnings() -> None:
    """Forget which subsystems already warned (test isolation)."""
    _WARNED.clear()


# --------------------------------------------------------------------- #
# Generation stamps + quarantine                                        #
# --------------------------------------------------------------------- #

_SEQ = itertools.count(1)


def next_generation() -> str:
    """A per-publish generation stamp, unique within and across processes.

    Embedded in tmp names and trace meta so a half-published entry is
    attributable to its writer and never collides with a concurrent
    publisher of the same key.
    """
    return f"{os.getpid()}-{next(_SEQ)}"


#: Name of the quarantine subtree ``lva-fsck --repair`` moves bad
#: entries into (and every scanner skips).
QUARANTINE_DIR = "quarantine"


def quarantine_path(root: PathLike, subsystem: str, entry: PathLike) -> Path:
    """Destination under ``<root>/quarantine/<subsystem>/`` for ``entry``.

    Collisions get a numeric suffix so repeated repairs never clobber
    earlier evidence.
    """
    base = Path(root) / QUARANTINE_DIR / subsystem
    candidate = base / Path(entry).name
    counter = 1
    while candidate.exists():
        candidate = base / f"{Path(entry).name}.{counter}"
        counter += 1
    return candidate


def quarantine(root: PathLike, subsystem: str, entry: PathLike) -> Optional[Path]:
    """Move ``entry`` (file or directory) into the quarantine subtree.

    Returns the destination, or ``None`` when the move failed (read-only
    store: the caller downgrades to reporting only).
    """
    source = Path(entry)
    destination = quarantine_path(root, subsystem, source)
    try:
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(source, destination)
    except OSError as exc:
        if exc.errno == errno.EXDEV:  # cross-device: fall back to copy+delete
            try:
                import shutil

                shutil.move(str(source), str(destination))
                return destination
            except OSError:
                return None
        return None
    return destination
