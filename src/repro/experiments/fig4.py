"""Figure 4: normalized MPKI — LVA vs idealized LVP across GHB sizes.

For GHB sizes 0, 1, 2 and 4, both the load value approximator and the
idealized predictor run over every benchmark; effective MPKI is normalized
to precise execution. The paper's findings: LVA achieves lower MPKI than
even an idealized LVP (exact predictability is not required), and MPKI
tends to *increase* with GHB size because hashing more values fragments
the approximator index, especially for floating-point data.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_technique,
)
from repro.experiments.sweep import SweepPoint, technique_point
from repro.sim.tracesim import Mode

GHB_SIZES: Tuple[int, ...] = (0, 1, 2, 4)


def points(small: bool = False, seed: int = 0) -> List[SweepPoint]:
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    out: List[SweepPoint] = []
    for name in BASELINE_WORKLOADS:
        for ghb in GHB_SIZES:
            config = ApproximatorConfig(ghb_size=ghb)
            out.append(technique_point(name, Mode.LVP, config, seed=seed, small=small))
            out.append(technique_point(name, Mode.LVA, config, seed=seed, small=small))
    return out


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep GHB sizes for LVA and idealized LVP."""
    result = ExperimentResult(
        name="Figure 4",
        description="normalized MPKI, LVA vs idealized LVP, GHB in {0,1,2,4}",
        meta={
            "expectation": "LVA below LVP on average; MPKI rises with GHB size"
        },
    )
    for name in BASELINE_WORKLOADS:
        for ghb in GHB_SIZES:
            config = ApproximatorConfig(ghb_size=ghb)
            lvp = run_technique(
                name, Mode.LVP, config=config, seed=seed, small=small
            )
            lva = run_technique(
                name, Mode.LVA, config=config, seed=seed, small=small
            )
            result.add(f"LVP-GHB-{ghb}", name, lvp.normalized_mpki)
            result.add(f"LVA-GHB-{ghb}", name, lva.normalized_mpki)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig4", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig4.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig4.points")
