"""Figure 13: floating-point precision loss vs MPKI (fluidanimate).

With a GHB of size 2, full-precision floats hash tiny value differences
into different approximator entries, destroying coverage. Dropping
low-order single-precision mantissa bits before hashing (Section VII-B)
restores approximate value locality: MPKI falls as more bits are removed.
Confidence is disabled, as in the paper, to isolate the hashing effect.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import ExperimentResult, run_technique
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode

PRECISION_LOSS_BITS: Tuple[int, ...] = (0, 5, 11, 17, 23)
WORKLOAD = "fluidanimate"


def _config(bits: int) -> ApproximatorConfig:
    return ApproximatorConfig(
        ghb_size=2,
        mantissa_drop_bits=bits,
        apply_confidence_to_floats=False,
        apply_confidence_to_ints=False,
    )


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    return [
        technique_point(WORKLOAD, Mode.LVA, _config(bits), seed=seed, small=small)
        for bits in PRECISION_LOSS_BITS
    ]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep mantissa truncation for fluidanimate at GHB size 2."""
    result = ExperimentResult(
        name="Figure 13",
        description="fluidanimate normalized MPKI vs mantissa bits dropped (GHB 2)",
        meta={"expectation": "MPKI falls as precision loss grows"},
    )
    for bits in PRECISION_LOSS_BITS:
        config = ApproximatorConfig(
            ghb_size=2,
            mantissa_drop_bits=bits,
            apply_confidence_to_floats=False,
            apply_confidence_to_ints=False,
        )
        lva = run_technique(WORKLOAD, Mode.LVA, config=config, seed=seed, small=small)
        result.add("normalized_mpki", f"drop-{bits}", lva.normalized_mpki)
        result.add("output_error", f"drop-{bits}", lva.output_error)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig13", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig13.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig13.points")
