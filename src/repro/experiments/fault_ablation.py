"""Ablation: approximator robustness under injected memory faults.

The fault-injection harness (:mod:`repro.faults`) can flip bits in
memory-served load values and silently drop block fetches. This ablation
sweeps those fault rates and reports how the approximator's coverage
(its confidence gate's acceptance rate) and application output error
respond. The precise baselines always run clean — error is measured
against *uncorrupted* execution, so the numbers isolate the fault
effect rather than comparing two equally corrupted runs.

Expectation: LVA degrades gracefully. Bit flips land in GHB history and
approximator entries, perturbing predictions; the confidence mechanism
sheds the worst of them, so coverage falls faster than output error
explodes. Dropped fetches starve training updates and raise effective
MPKI but do not corrupt values.
"""

from __future__ import annotations

from typing import List, Tuple

from repro import faults
from repro.experiments.common import ExperimentResult, run_technique
from repro.experiments.sweep import SweepPoint, technique_point
from repro.sim.tracesim import Mode

#: (series tag, fault spec) — "" means clean execution.
FAULT_LEVELS: Tuple[Tuple[str, str], ...] = (
    ("clean", ""),
    ("flip-1e-4", "flip:prob=0.0001"),
    ("flip-1e-3", "flip:prob=0.001"),
    ("flip-1e-2", "flip:prob=0.01"),
    ("flip-1e-1", "flip:prob=0.1"),
    ("drop-1e-3", "drop:prob=0.001"),
    ("drop-1e-2", "drop:prob=0.01"),
)

#: One float-heavy, one int-heavy, one mixed workload — enough to show
#: the type-dependent fault response without sweeping the whole suite.
WORKLOADS: Tuple[str, ...] = ("blackscholes", "canneal", "fluidanimate")


def points(small: bool = False, seed: int = 0) -> List[SweepPoint]:
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    return [
        technique_point(name, Mode.LVA, seed=seed, small=small, faults=spec)
        for name in WORKLOADS
        for _, spec in FAULT_LEVELS
    ]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep injected memory-fault rates for LVA."""
    result = ExperimentResult(
        name="Ablation: memory faults",
        description="LVA output error / coverage vs injected memory-fault rate",
        meta={
            "expectation": "confidence sheds corrupted values; graceful degradation"
        },
    )
    for name in WORKLOADS:
        for tag, spec in FAULT_LEVELS:
            with faults.memory_faults(spec):
                lva = run_technique(name, Mode.LVA, seed=seed, small=small)
            result.add(f"error@{tag}", name, lva.output_error)
            result.add(f"coverage@{tag}", name, lva.coverage)
            # The injected-fault counters make the dose observable even
            # when the (threshold-counting) error metric absorbs it.
            result.add(f"bitflips@{tag}", name, lva.raw.get("value_bit_flips", 0))
            result.add(f"drops@{tag}", name, lva.raw.get("fetches_dropped", 0))
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="ablate-memory-faults", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fault_ablation.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fault_ablation.points")
