"""Figure 9: LVA output error across approximation degrees.

Higher degree means less frequent training (one fetch per degree+1
misses), so approximations grow staler and error rises with degree —
the energy-error trade-off's cost side.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_technique,
)
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode

DEGREES: Tuple[int, ...] = (0, 2, 4, 8, 16)


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    return [
        technique_point(
            name,
            Mode.LVA,
            ApproximatorConfig(approximation_degree=degree),
            seed=seed,
            small=small,
        )
        for name in BASELINE_WORKLOADS
        for degree in DEGREES
    ]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep the approximation degree, measuring output error."""
    result = ExperimentResult(
        name="Figure 9",
        description="LVA output error for approximation degrees {0,2,4,8,16}",
        meta={"expectation": "error generally rises with degree"},
    )
    for name in BASELINE_WORKLOADS:
        for degree in DEGREES:
            config = ApproximatorConfig(approximation_degree=degree)
            lva = run_technique(
                name, Mode.LVA, config=config, seed=seed, small=small
            )
            result.add(f"approx-{degree}", name, lva.output_error)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig9", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig9.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig9.points")
