"""Figure 1: bodytrack output, precise vs approximate execution.

The paper's opening figure shows two bodytrack output frames side by side
— precise execution and execution under LVA at the baseline configuration
— with 7.7 % output error and visually indiscernible results. This driver
reproduces the comparison quantitatively (per-timestep track drift and the
pair-wise output error) and, when given an output directory, renders the
two tracked frames as PGM images exactly like
``examples/figure1_bodytrack.py``.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.experiments.common import ExperimentResult, run_precise_reference
from repro.experiments.sweep import precise_point
from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.registry import get_workload

WORKLOAD = "bodytrack"


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine).

    Only the precise reference is cacheable; the LVA track comparison
    runs inline because it inspects the raw output, not a TechniqueResult.
    """
    return [precise_point(WORKLOAD, seed=seed, small=small)]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Run bodytrack precisely and under baseline LVA; compare the tracks."""
    reference = run_precise_reference(WORKLOAD, seed=seed, small=small)
    workload = get_workload(WORKLOAD, small=small)
    sim = TraceSimulator(Mode.LVA)
    approx = workload.execute(sim, seed)
    stats = sim.finish()
    error = workload.output_error(reference.output, approx)

    result = ExperimentResult(
        name="Figure 1",
        description="bodytrack output: precise vs approximate execution",
        meta={"paper_output_error": 0.077},
    )
    result.add("summary", "output_error", error)
    result.add("summary", "coverage", stats.coverage)
    result.add("summary", "effective_mpki", stats.mpki)
    for t, ((px, py), (ax, ay)) in enumerate(zip(reference.output, approx)):
        result.add("track_drift_px", f"t{t}", math.hypot(ax - px, ay - py))
    return result


def render_frames(
    precise: List[Tuple[float, float]],
    approx: List[Tuple[float, float]],
    out_dir: str,
    small: bool = False,
) -> Tuple[str, str]:
    """Write the two tracked frames as PGM images; returns their paths.

    Separated from :func:`run` so the experiment stays artefact-free by
    default; the example script wires the two together.
    """
    import numpy as np

    workload = get_workload(WORKLOAD, small=small)

    def render(estimates) -> "np.ndarray":
        rng = np.random.default_rng(999)
        centre = workload._true_path(workload.params["timesteps"] - 1)
        image = workload._render(rng, centre).astype(np.int64)
        height, width = image.shape
        for t, (x, y) in enumerate(estimates):
            radius = 2 if t == len(estimates) - 1 else 1
            cx, cy = int(round(x)), int(round(y))
            for dy in range(-radius, radius + 1):
                for dx in range(-radius, radius + 1):
                    if 0 <= cx + dx < width and 0 <= cy + dy < height:
                        image[cy + dy, cx + dx] = 255
        return image

    def write_pgm(path: str, image) -> None:
        height, width = image.shape
        with open(path, "w") as handle:
            handle.write(f"P2\n{width} {height}\n255\n")
            for row in image:
                handle.write(" ".join(str(int(v)) for v in row) + "\n")

    precise_path = f"{out_dir}/figure1_precise.pgm"
    approx_path = f"{out_dir}/figure1_approximate.pgm"
    write_pgm(precise_path, render(precise))
    write_pgm(approx_path, render(approx))
    return precise_path, approx_path

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig1", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig1.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig1.points")
