"""NoC model calibration: fast analytical model vs detailed flit-level model.

Drives both network models with identical uniform-random traffic at a
range of injection rates and compares average packet latency. The fast
link-reservation model used by the full-system replay should track the
detailed (BookSim-class) router model at low-to-moderate load and show the
same qualitative saturation behaviour as load rises — the evidence that
the phase-2 contention numbers are trustworthy.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.noc.detailed import DetailedMeshNetwork, DetailedNocConfig
from repro.noc.network import MeshNetwork, NocConfig

#: Packets injected per node per cycle (offered load points).
INJECTION_RATES: Tuple[float, ...] = (0.01, 0.02, 0.05, 0.10, 0.15)
PACKET_FLITS = 5
SIM_CYCLES = 2000


def _traffic(rate: float, num_nodes: int, rng: np.random.Generator) -> List[Tuple[int, int, int]]:
    """Uniform-random (src, dst, time) packet list at the offered rate."""
    packets = []
    for time in range(SIM_CYCLES):
        for src in range(num_nodes):
            if rng.random() < rate:
                dst = int(rng.integers(0, num_nodes))
                packets.append((src, dst, time))
    return packets


def _fast_latency(packets, config: NocConfig) -> float:
    net = MeshNetwork(config)
    total = 0
    for src, dst, time in packets:
        total += net.send(src, dst, time, PACKET_FLITS).latency
    return total / len(packets) if packets else 0.0


def _detailed_latency(packets, config: DetailedNocConfig) -> float:
    net = DetailedMeshNetwork(config)
    for src, dst, time in packets:
        net.inject(src, dst, PACKET_FLITS, time=max(time, net.cycle))
    stats = net.run(max_cycles=SIM_CYCLES * 50)
    return stats.average_latency


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep offered load; report both models' average latencies."""
    rng = np.random.default_rng(seed)
    rates = INJECTION_RATES[:3] if small else INJECTION_RATES
    result = ExperimentResult(
        name="NoC calibration",
        description="fast vs detailed mesh model: avg latency vs offered load",
        meta={
            "packet_flits": PACKET_FLITS,
            "expectation": "models agree at low load; both rise with load",
        },
    )
    fast_config = NocConfig()
    detailed_config = DetailedNocConfig()
    num_nodes = fast_config.width * fast_config.height
    for rate in rates:
        packets = _traffic(rate, num_nodes, rng)
        if not packets:
            continue
        label = f"rate-{rate:g}"
        result.add("fast_latency", label, _fast_latency(packets, fast_config))
        result.add("detailed_latency", label, _detailed_latency(packets, detailed_config))
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="ablate-noc-model", render_fn=run)
run = deprecated_entry(DRIVER, "render", "repro.experiments.noc_calibration.run")
