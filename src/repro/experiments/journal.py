"""Append-only run journal: checkpoint/resume for interrupted sweeps.

One JSONL file per *run identity* (the SHA-256 of the sorted point keys,
so the same requested sweep always maps to the same journal), stored in
a ``journals/`` directory beside the disk cache. Each line records one
event::

    {"event": "done",   "kind": "technique", "key": "<sha256>"}
    {"event": "failed", "kind": "technique", "key": "<sha256>",
     "error": "PointTimeoutError", "message": "...", "attempts": 3}

The heavy results themselves live in the content-addressed disk cache
(workers write them as they complete); the journal only records *which*
points finished, so a ``--resume`` run restores completed points from
the cache and recomputes exactly the missing ones. Failed points are
deliberately treated as pending on resume — a rerun retries them, and a
resumed table therefore converges to bit-identity with an uninterrupted
run.

Every record is one whole line issued as a single ``os.write`` on an
``O_APPEND`` descriptor — POSIX appends are atomic at this size, so two
processes appending to the same journal interleave without tearing each
other's lines — and carries a CRC32 (:mod:`repro.experiments.integrity`)
so mid-file damage is detected, reported (warn-once +
``storage.corrupt.journal`` counter) and skipped on recovery instead of
resurrecting garbage bookkeeping. A torn *final* line (hard kill mid-
append) is expected crash debris and is tolerated silently. A SIGINT/
SIGTERM (or a crash of the parent itself) therefore loses at most the
points still in flight. A journal on a read-only filesystem degrades to
a warn-once no-op, mirroring the disk cache's behaviour: robustness
layers must never become a new way to fail.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, Iterable, Optional, Set

from repro.experiments import diskcache, integrity
from repro.faults import fsfaults

#: Bump when the journal record format changes incompatibly.
#: v2: records carry a CRC32 and appends are single O_APPEND writes.
JOURNAL_VERSION = 2


def journal_dir() -> Path:
    """Where journals live: ``journals/`` beside the disk cache."""
    return diskcache.default_cache_dir() / "journals"


def run_id(keys: Iterable[str]) -> str:
    """Stable identity of one requested sweep: hash of its sorted keys."""
    digest = hashlib.sha256(f"journal-v{JOURNAL_VERSION}".encode("utf-8"))
    for key in sorted(keys):
        digest.update(key.encode("utf-8"))
        digest.update(b";")
    return digest.hexdigest()[:24]


class RunJournal:
    """One run's append-only completion log.

    ``resume=True`` loads any existing records first (and keeps
    appending to the same file); ``resume=False`` truncates — a fresh
    run invalidates the previous attempt's bookkeeping.
    """

    def __init__(self, path: Path, resume: bool = False) -> None:
        self.path = Path(path)
        self.done: Set[str] = set()
        self.failed: Dict[str, dict] = {}
        #: Recovery bookkeeping from the last _load: how many valid
        #: records were restored, how many mid-file lines were damaged
        #: and skipped, and whether a torn trailing line was tolerated.
        self.recovered_lines = 0
        self.corrupt_lines = 0
        self.torn_tail = False
        #: Byte length of the journal up to (and including) its last
        #: complete line — everything beyond is torn crash debris that a
        #: resume trims before appending, so a fresh record is never
        #: glued onto a half-written one.
        self._valid_length = 0
        self._loaded_length = 0
        self._fd: Optional[int] = None
        self._broken = False
        if resume:
            self._load()
        self._open(append=resume)

    @classmethod
    def for_keys(cls, keys: Iterable[str], resume: bool = False) -> "RunJournal":
        return cls(journal_dir() / f"{run_id(keys)}.jsonl", resume=resume)

    # -- state ----------------------------------------------------------- #

    def _load(self) -> None:
        try:
            blob = self.path.read_bytes()
        except OSError:
            return
        self._loaded_length = len(blob)
        self._valid_length = len(blob)
        text = blob.decode("utf-8", errors="replace")
        lines = text.splitlines()
        for index, line in enumerate(lines):
            final = index == len(lines) - 1 and not blob.endswith(b"\n")
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if final:
                    # Torn trailing line from a hard kill mid-append:
                    # expected crash debris, recover silently (and trim
                    # it before appending, see _open).
                    self.torn_tail = True
                    self._valid_length = blob.rfind(b"\n") + 1
                else:
                    self.corrupt_lines += 1
                    integrity.report_corruption("journal", self.path, "garbage-line")
                continue
            if not (isinstance(record, dict) and integrity.verify_record(record)):
                self.corrupt_lines += 1
                integrity.report_corruption("journal", self.path, "record-checksum")
                continue
            key = record.get("key")
            if not key:
                continue
            self.recovered_lines += 1
            if record.get("event") == "done":
                self.done.add(key)
                self.failed.pop(key, None)
            elif record.get("event") == "failed":
                self.failed[key] = record
                self.done.discard(key)

    def _open(self, append: bool) -> None:
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        if not append:
            flags |= os.O_TRUNC
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.path, flags, 0o644)
            if append and self.torn_tail:
                # Trim the torn fragment so the next append starts on a
                # fresh line instead of gluing onto half a record — but
                # only if nobody appended since _load read the file.
                if os.fstat(self._fd).st_size == self._loaded_length:
                    os.ftruncate(self._fd, self._valid_length)
        except OSError as exc:
            self._mark_broken(exc)

    def _mark_broken(self, exc: OSError) -> None:
        if not self._broken:
            self._broken = True
            warnings.warn(
                f"run journal unavailable ({exc}); checkpoint/resume disabled "
                f"for this run",
                RuntimeWarning,
                stacklevel=3,
            )
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
        self._fd = None

    # -- recording ------------------------------------------------------- #

    def _write(self, record: dict) -> None:
        if self._fd is None:
            return
        sealed = integrity.seal_record(record)
        line = (json.dumps(sealed, sort_keys=True) + "\n").encode("utf-8")
        try:
            line = fsfaults.on_write("journal.append", self.path, line)
            fsfaults.crash_point("journal.append.pre_write")
            # One write of one whole line on an O_APPEND fd: atomic with
            # respect to other appenders, so interleaved writers never
            # tear each other's records.
            os.write(self._fd, line)
            fsfaults.crash_point("journal.append.post_write")
        except OSError as exc:
            self._mark_broken(exc)

    def record_done(self, kind: str, key: str) -> None:
        self.done.add(key)
        self.failed.pop(key, None)
        self._write({"event": "done", "kind": kind, "key": key})

    def record_failed(
        self, kind: str, key: str, error: str, message: str, attempts: int
    ) -> None:
        self.failed[key] = {"error": error, "message": message}
        self._write(
            {
                "event": "failed",
                "kind": kind,
                "key": key,
                "error": error,
                "message": message,
                "attempts": attempts,
            }
        )

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullJournal:
    """Journal stand-in when the disk layer is disabled (``--no-cache``).

    Without the content-addressed cache there is nowhere to restore
    completed results from, so checkpointing would be dead weight.
    """

    path: Optional[Path] = None
    done: Set[str] = frozenset()
    failed: Dict[str, dict] = {}

    def record_done(self, kind: str, key: str) -> None:
        pass

    def record_failed(self, *args, **kwargs) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        pass
