"""Append-only run journal: checkpoint/resume for interrupted sweeps.

One JSONL file per *run identity* (the SHA-256 of the sorted point keys,
so the same requested sweep always maps to the same journal), stored in
a ``journals/`` directory beside the disk cache. Each line records one
event::

    {"event": "done",   "kind": "technique", "key": "<sha256>"}
    {"event": "failed", "kind": "technique", "key": "<sha256>",
     "error": "PointTimeoutError", "message": "...", "attempts": 3}

The heavy results themselves live in the content-addressed disk cache
(workers write them as they complete); the journal only records *which*
points finished, so a ``--resume`` run restores completed points from
the cache and recomputes exactly the missing ones. Failed points are
deliberately treated as pending on resume — a rerun retries them, and a
resumed table therefore converges to bit-identity with an uninterrupted
run.

Every record is flushed on write, so a SIGINT/SIGTERM (or a crash of the
parent itself) loses at most the points still in flight. A journal on a
read-only filesystem degrades to a warn-once no-op, mirroring the disk
cache's behaviour: robustness layers must never become a new way to
fail.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path
from typing import Dict, Iterable, Optional, Set

from repro.experiments import diskcache

#: Bump when the journal record format changes incompatibly.
JOURNAL_VERSION = 1


def journal_dir() -> Path:
    """Where journals live: ``journals/`` beside the disk cache."""
    return diskcache.default_cache_dir() / "journals"


def run_id(keys: Iterable[str]) -> str:
    """Stable identity of one requested sweep: hash of its sorted keys."""
    digest = hashlib.sha256(f"journal-v{JOURNAL_VERSION}".encode("utf-8"))
    for key in sorted(keys):
        digest.update(key.encode("utf-8"))
        digest.update(b";")
    return digest.hexdigest()[:24]


class RunJournal:
    """One run's append-only completion log.

    ``resume=True`` loads any existing records first (and keeps
    appending to the same file); ``resume=False`` truncates — a fresh
    run invalidates the previous attempt's bookkeeping.
    """

    def __init__(self, path: Path, resume: bool = False) -> None:
        self.path = Path(path)
        self.done: Set[str] = set()
        self.failed: Dict[str, dict] = {}
        self._handle = None
        self._broken = False
        if resume:
            self._load()
        self._open(append=resume)

    @classmethod
    def for_keys(cls, keys: Iterable[str], resume: bool = False) -> "RunJournal":
        return cls(journal_dir() / f"{run_id(keys)}.jsonl", resume=resume)

    # -- state ----------------------------------------------------------- #

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final line from a hard kill: ignore
            key = record.get("key")
            if not key:
                continue
            if record.get("event") == "done":
                self.done.add(key)
                self.failed.pop(key, None)
            elif record.get("event") == "failed":
                self.failed[key] = record
                self.done.discard(key)

    def _open(self, append: bool) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a" if append else "w", encoding="utf-8")
        except OSError as exc:
            self._mark_broken(exc)

    def _mark_broken(self, exc: OSError) -> None:
        if not self._broken:
            self._broken = True
            warnings.warn(
                f"run journal unavailable ({exc}); checkpoint/resume disabled "
                f"for this run",
                RuntimeWarning,
                stacklevel=3,
            )
        self._handle = None

    # -- recording ------------------------------------------------------- #

    def _write(self, record: dict) -> None:
        if self._handle is None:
            return
        try:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        except OSError as exc:
            self._mark_broken(exc)

    def record_done(self, kind: str, key: str) -> None:
        self.done.add(key)
        self.failed.pop(key, None)
        self._write({"event": "done", "kind": kind, "key": key})

    def record_failed(
        self, kind: str, key: str, error: str, message: str, attempts: int
    ) -> None:
        self.failed[key] = {"error": error, "message": message}
        self._write(
            {
                "event": "failed",
                "kind": kind,
                "key": key,
                "error": error,
                "message": message,
                "attempts": attempts,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullJournal:
    """Journal stand-in when the disk layer is disabled (``--no-cache``).

    Without the content-addressed cache there is nowhere to restore
    completed results from, so checkpointing would be dead weight.
    """

    path: Optional[Path] = None
    done: Set[str] = frozenset()
    failed: Dict[str, dict] = {}

    def record_done(self, kind: str, key: str) -> None:
        pass

    def record_failed(self, *args, **kwargs) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        pass
