"""Declarative paper-vs-measured shape checks.

The reproduction cannot match the paper's absolute numbers (different
inputs, a simulated substrate), but the *shapes* must hold: who wins, in
which direction each trade-off moves, where the crossovers sit. This
module encodes those shapes declaratively so that the benchmark harness,
the CLI (``--verify``) and EXPERIMENTS.md all check the same claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class Expectation:
    """One qualitative claim from the paper, checkable on a result."""

    experiment: str
    claim: str
    #: Receives the result, returns True when the claim holds.
    check: Callable[[ExperimentResult], bool]


@dataclass
class VerificationReport:
    """Outcome of checking a result against its expectations."""

    experiment: str
    passed: List[str]
    failed: List[str]

    @property
    def ok(self) -> bool:
        """True when every expectation held."""
        return not self.failed

    def format(self) -> str:
        lines = [f"-- {self.experiment}: {len(self.passed)} ok, {len(self.failed)} failed"]
        lines.extend(f"   [ok]   {claim}" for claim in self.passed)
        lines.extend(f"   [FAIL] {claim}" for claim in self.failed)
        return "\n".join(lines)


def _avg(result: ExperimentResult, label: str) -> float:
    return result.average(label)


EXPECTATIONS: Dict[str, List[Expectation]] = {
    "table1": [
        Expectation(
            "table1",
            "canneal has the highest precise MPKI (paper: 12.50)",
            lambda r: r.series["precise_mpki"]["canneal"]
            == max(r.series["precise_mpki"].values()),
        ),
        Expectation(
            "table1",
            "swaptions is essentially miss-free (paper: 4.92e-5)",
            lambda r: r.series["precise_mpki"]["swaptions"] < 0.05,
        ),
        Expectation(
            "table1",
            "instruction-count variation is low for every workload",
            lambda r: all(v < 0.15 for v in r.series["instruction_variation"].values()),
        ),
    ],
    "fig4": [
        Expectation(
            "fig4",
            "LVA achieves lower average MPKI than idealized LVP at GHB 0",
            lambda r: _avg(r, "LVA-GHB-0") < _avg(r, "LVP-GHB-0"),
        ),
        Expectation(
            "fig4",
            "MPKI tends to increase with GHB size",
            lambda r: _avg(r, "LVA-GHB-0") < _avg(r, "LVA-GHB-4"),
        ),
    ],
    "fig5": [
        Expectation(
            "fig5",
            "output error around/below ~10% except ferret at GHB 0",
            lambda r: all(
                error < 0.15
                for name, error in r.series["GHB-0"].items()
                if name != "ferret"
            ),
        ),
        Expectation(
            "fig5",
            "swaptions and x264 error near zero",
            lambda r: r.series["GHB-0"]["swaptions"] < 0.01
            and r.series["GHB-0"]["x264"] < 0.01,
        ),
    ],
    "fig6": [
        Expectation(
            "fig6",
            "relaxing the window lowers MPKI (0% -> infinite)",
            lambda r: _avg(r, "mpki-infinite") < _avg(r, "mpki-0%"),
        ),
        Expectation(
            "fig6",
            "relaxing the window raises output error",
            lambda r: _avg(r, "error-infinite") > _avg(r, "error-0%"),
        ),
    ],
    "fig7": [
        Expectation(
            "fig7",
            "MPKI is resilient to value delay (4 vs 32 within 0.1)",
            lambda r: abs(_avg(r, "mpki-delay-32") - _avg(r, "mpki-delay-4")) < 0.1,
        ),
        Expectation(
            "fig7",
            "output error is resilient to value delay",
            lambda r: abs(_avg(r, "error-delay-32") - _avg(r, "error-delay-4")) < 0.05,
        ),
    ],
    "fig8": [
        Expectation(
            "fig8",
            "prefetching increases fetches (above precise execution)",
            lambda r: _avg(r, "prefetch-16-fetches") > 1.0,
        ),
        Expectation(
            "fig8",
            "LVA decreases fetches (below precise execution)",
            lambda r: _avg(r, "approx-16-fetches") < 1.0,
        ),
        Expectation(
            "fig8",
            "higher approximation degree cancels more fetches",
            lambda r: _avg(r, "approx-16-fetches") < _avg(r, "approx-2-fetches"),
        ),
    ],
    "fig9": [
        Expectation(
            "fig9",
            "error rises with approximation degree (0 -> 16)",
            lambda r: _avg(r, "approx-16") >= _avg(r, "approx-0"),
        ),
    ],
    "fig10": [
        Expectation(
            "fig10",
            "positive average speedup at degree 0 (paper: 8.5%)",
            lambda r: _avg(r, "speedup-approx-0") > 0.0,
        ),
        Expectation(
            "fig10",
            "canneal is the biggest winner (paper: 28.6%)",
            lambda r: r.series["speedup-approx-0"]["canneal"]
            == max(r.series["speedup-approx-0"].values()),
        ),
        Expectation(
            "fig10",
            "energy savings grow with degree (paper: 7.2% @4, 12.6% @16)",
            lambda r: _avg(r, "energy-approx-16") > _avg(r, "energy-approx-4")
            > _avg(r, "energy-approx-0"),
        ),
    ],
    "fig11": [
        Expectation(
            "fig11",
            "L1-miss EDP improves with degree (paper: 0.58/0.46/0.36)",
            lambda r: _avg(r, "approx-16") < _avg(r, "approx-4") < _avg(r, "approx-0"),
        ),
        Expectation(
            "fig11",
            "average EDP well below precise execution at degree 0",
            lambda r: _avg(r, "approx-0") < 0.85,
        ),
    ],
    "fig12": [
        Expectation(
            "fig12",
            "x264 has the most static approximate-load PCs (paper: ~300 max)",
            lambda r: r.series["static_approx_pcs"]["x264"]
            == max(r.series["static_approx_pcs"].values()),
        ),
        Expectation(
            "fig12",
            "every benchmark fits the 512-entry table",
            lambda r: all(v < 512 for v in r.series["static_approx_pcs"].values()),
        ),
    ],
    "fig13": [
        Expectation(
            "fig13",
            "dropping mantissa bits lowers fluidanimate MPKI (GHB 2)",
            lambda r: r.series["normalized_mpki"]["drop-23"]
            < r.series["normalized_mpki"]["drop-0"],
        ),
        Expectation(
            "fig13",
            "fluidanimate error stays low at full truncation",
            lambda r: r.series["output_error"]["drop-23"] < 0.15,
        ),
    ],
}


def verify(name: str, result: ExperimentResult) -> VerificationReport:
    """Check one experiment result against its recorded expectations.

    Experiments without expectations (table2, ablations) verify trivially.
    """
    passed: List[str] = []
    failed: List[str] = []
    for expectation in EXPECTATIONS.get(name, []):
        try:
            ok = expectation.check(result)
        except (KeyError, ZeroDivisionError):
            ok = False
        (passed if ok else failed).append(expectation.claim)
    return VerificationReport(experiment=name, passed=passed, failed=failed)
