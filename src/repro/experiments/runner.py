"""Command-line entry point: regenerate any (or every) table/figure.

Usage::

    python -m repro.experiments                 # everything, full scale
    python -m repro.experiments fig4 fig5       # selected experiments
    python -m repro.experiments --small         # reduced inputs (quick check)
    python -m repro.experiments --list          # show available experiments
    python -m repro.experiments --jobs 4        # point-level parallel sweep
    python -m repro.experiments fig6 --json out.json --markdown out.md
    python -m repro.experiments --jobs 4 --retries 2 --point-timeout 300
    python -m repro.experiments --jobs 4 --resume   # continue an interrupted run
    python -m repro.experiments fig13 --inject "crash:mantissa_drop_bits=11"

With ``--jobs N`` the runner first collects every sweep point the
requested experiments declare (via their ``points()`` functions), dedupes
them across experiments, and executes them on the
:class:`~repro.experiments.sweep.SweepEngine` — precise baselines exactly
once, then the technique points, all at point granularity.  The drivers
then re-run serially in the parent against warm caches, so tables print
in a deterministic order no matter how the points were scheduled.
Full-system experiments decompose into replay points too: the engine
pre-captures each needed trace once into the shared trace store, then
fans the replays out; workers memory-map the stored columns.  The few
experiments that cannot be decomposed into points still run whole in
worker processes.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional

from repro import faults, telemetry
from repro.errors import ConfigurationError
from repro.telemetry.profiling import Profiler, profile_to_text
from repro.experiments import (
    ablations,
    diskcache,
    fault_ablation,
    fig1,
    noc_calibration,
    sensitivity,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig_predictors,
    table1,
    table2,
)
from repro.experiments.common import Driver, ExperimentResult, averaged
from repro.experiments.expectations import verify
from repro.experiments.report import render_report, to_json
from repro.experiments.sweep import SweepEngine, SweepPoint

#: Every experiment, keyed by CLI name, as an
#: :class:`~repro.experiments.common.ExperimentDriver`. ``Driver`` objects
#: are callable (``DRIVERS[name](small=..., seed=...)`` renders), so this
#: mapping also serves the seed-averaging helper unchanged.
DRIVERS: Dict[str, Driver] = {
    "table1": table1.DRIVER,
    "fig1": fig1.DRIVER,
    "table2": table2.DRIVER,
    "fig4": fig4.DRIVER,
    "fig5": fig5.DRIVER,
    "fig6": fig6.DRIVER,
    "fig7": fig7.DRIVER,
    "fig8": fig8.DRIVER,
    "fig9": fig9.DRIVER,
    "fig10": fig10.DRIVER,
    "fig11": fig11.DRIVER,
    "fig12": fig12.DRIVER,
    "fig13": fig13.DRIVER,
    "fig_predictors": fig_predictors.DRIVER,
    **ablations.DRIVERS,
    "ablate-noc-model": noc_calibration.DRIVER,
    "ablate-sensitivity": sensitivity.DRIVER,
    "ablate-memory-faults": fault_ablation.DRIVER,
}

#: Backwards-compatible views of :data:`DRIVERS` (drivers are callable).
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = dict(DRIVERS)

#: Experiments decomposable into sweep points.  The rest (trace replay,
#: full-system, NoC calibration) run whole because their cost is not in
#: cacheable ``run_technique``/``run_precise_reference`` calls.
POINTS: Dict[str, Callable[..., List[SweepPoint]]] = {
    name: driver.points
    for name, driver in DRIVERS.items()
    if driver.points_fn is not None
}


def gather_points(names, small: bool, seed: int, repeats: int) -> List[SweepPoint]:
    """Collect the sweep points for every swept experiment in ``names``.

    ``--repeats N`` averages over seeds ``seed .. seed+N-1`` (matching
    :func:`repro.experiments.common.averaged`), so each of those seeds
    contributes its own points.
    """
    points: List[SweepPoint] = []
    for name in names:
        declare = POINTS.get(name)
        if declare is None:
            continue
        for offset in range(max(1, repeats)):
            points.extend(declare(small=small, seed=seed + offset))
    return points


def _experiment_key(name: str, repeats: int, small: bool, seed: int) -> str:
    return diskcache.point_key(
        "experiment", name=name, repeats=repeats, small=small, seed=seed
    )


def _run_one(
    name: str,
    repeats: int,
    small: bool,
    seed: int,
    profile: bool = False,
    profiler: Optional[Profiler] = None,
):
    """Worker entry point: run one experiment (possibly seed-averaged).

    Unswept experiments (the trace/full-system replays) are cached whole
    on disk: their cost lives outside the point-level caches, but they
    are just as deterministic, so their finished tables can be served
    from the same disk layer. Profiled runs bypass the cache — a profile
    of a disk read is not what ``--profile`` asks for.

    ``profiler`` (parent-process, in-serial runs only — it is not
    picklable) records a component frame per experiment for the
    ``--profile-out`` speedscope export.
    """
    started = time.time()
    disk = None
    if name not in POINTS and not profile:
        disk = diskcache.active_cache()
    if disk is not None:
        stored = disk.get(_experiment_key(name, repeats, small, seed))
        if isinstance(stored, ExperimentResult):
            return name, stored, time.time() - started, None

    def compute() -> ExperimentResult:
        if repeats > 1:
            return averaged(DRIVERS[name], repeats=repeats, small=small, seed=seed)
        return DRIVERS[name].render(small=small, seed=seed)

    profile_text: Optional[str] = None
    if profile:
        result, profile_text = profile_to_text(compute, limit=20)
    else:
        frame = (
            profiler.frame(f"experiment:{name}")
            if profiler is not None
            else nullcontext()
        )
        with frame:
            result = compute()
    if disk is not None:
        disk.put(_experiment_key(name, repeats, small, seed), result)
    return name, result, time.time() - started, profile_text


def _execute(names, args, profiler: Optional[Profiler] = None):
    """Yield (name, result, elapsed, profile) per experiment, honouring --jobs.

    Swept experiments run serially in the parent — after a sweep their
    drivers only read warm caches, so parallelising them again would buy
    nothing.  Unswept experiments go to worker processes; completions are
    collected with :func:`as_completed` and buffered, then yielded in the
    requested order, so a slow first experiment no longer delays
    *collecting* (and error-reporting) the others, only their printing.
    """
    if args.jobs <= 1 or len(names) == 1:
        for name in names:
            yield _run_one(
                name, args.repeats, args.small, args.seed, args.profile, profiler
            )
        return

    pooled = [i for i, name in enumerate(names) if name not in POINTS]
    completed: Dict[int, tuple] = {}
    with ProcessPoolExecutor(max_workers=args.jobs) as pool:
        futures = {
            pool.submit(
                _run_one, names[i], args.repeats, args.small, args.seed, args.profile
            ): i
            for i in pooled
        }
        for i, name in enumerate(names):
            if name in POINTS:
                completed[i] = _run_one(
                    name, args.repeats, args.small, args.seed, args.profile, profiler
                )
        next_index = 0
        while next_index < len(names) and next_index in completed:
            yield completed.pop(next_index)
            next_index += 1
        for future in as_completed(futures):
            completed[futures[future]] = future.result()
            while next_index < len(names) and next_index in completed:
                yield completed.pop(next_index)
                next_index += 1


def main(argv=None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(
        description="Reproduce the tables and figures of Load Value Approximation"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"which to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--small", action="store_true", help="reduced inputs for a quick check"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    parser.add_argument(
        "--markdown", metavar="PATH", help="also write results as a Markdown report"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="average each experiment over N seeds (the paper uses 5)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check each result against the paper's qualitative expectations",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run sweep points (and unswept experiments) in N worker processes",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile each experiment, printing its top-20 cumulative hotspots",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run (and its workers)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry each failed sweep point up to N times (exponential backoff)",
    )
    parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon any single sweep point attempt after SECONDS",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from its run journal (skip completed points)",
    )
    parser.add_argument(
        "--inject",
        metavar="SPEC",
        default=None,
        help="fault-injection spec, e.g. 'crash:workload=canneal' or "
        "'flip:prob=0.001' (see docs/robustness.md)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable the metrics registry and sim telemetry hooks",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL telemetry trace to PATH (implies --telemetry; "
        "summarize it with lva-trace)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="write a speedscope (flamegraph) JSON profile of this run to PATH",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.no_cache:
        diskcache.disable()
    if args.trace or args.telemetry:
        telemetry.configure(on=True, trace=args.trace)
    if args.inject:
        try:
            faults.activate(args.inject)
        except ConfigurationError as exc:
            parser.error(f"--inject: {exc}")

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    profiler = Profiler("lva-experiments") if args.profile_out else None

    engine_requested = (
        args.jobs > 1
        or args.resume
        or args.retries > 0
        or args.point_timeout is not None
    )
    if engine_requested:
        points = gather_points(names, args.small, args.seed, args.repeats)
        if points:
            engine = SweepEngine(
                jobs=args.jobs,
                retries=args.retries,
                point_timeout=args.point_timeout,
                resume=args.resume,
                jitter_seed=args.seed,
            )
            try:
                sweep_frame = (
                    profiler.frame("sweep") if profiler is not None else nullcontext()
                )
                with sweep_frame:
                    report = engine.execute(points)
            except KeyboardInterrupt:
                print(
                    "\nsweep interrupted; completed points are journaled — "
                    "rerun with --resume to continue",
                    file=sys.stderr,
                )
                return 130
            print(report.summary())
            for failure in report.failures:
                print(f"  FAILED {failure.describe()}", file=sys.stderr)
            print()

    results = []
    failures = 0
    for name, result, elapsed, profile_text in _execute(names, args, profiler):
        results.append(result)
        print(result.format_table())
        if profile_text:
            print(f"--- profile: {name} (top 20 by cumulative time) ---")
            print(profile_text)
        if args.verify:
            report = verify(name, result)
            print(report.format())
            failures += len(report.failed)
        print(f"[{name} completed in {elapsed:.1f}s]\n")

    if args.json:
        payload = "[\n" + ",\n".join(to_json(r) for r in results) + "\n]\n"
        with open(args.json, "w") as handle:
            handle.write(payload)
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(render_report(results, title="Load Value Approximation — measured results"))
    if profiler is not None:
        out = profiler.write_speedscope(args.profile_out)
        print(f"[speedscope profile written to {out}]")
    if args.trace:
        telemetry.shutdown()
        print(f"[telemetry trace written to {args.trace}]")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
