"""Command-line entry point: regenerate any (or every) table/figure.

Usage::

    python -m repro.experiments                 # everything, full scale
    python -m repro.experiments fig4 fig5       # selected experiments
    python -m repro.experiments --small         # reduced inputs (quick check)
    python -m repro.experiments --list          # show available experiments
    python -m repro.experiments fig6 --json out.json --markdown out.md
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    fig1,
    noc_calibration,
    sensitivity,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
    table2,
)
from repro.experiments.common import ExperimentResult, averaged
from repro.experiments.expectations import verify
from repro.experiments.report import render_report, to_json

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "table2": table2.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "ablate-table-size": ablations.table_size,
    "ablate-lhb-size": ablations.lhb_size,
    "ablate-compute-fn": ablations.compute_function,
    "ablate-int-confidence": ablations.int_confidence,
    "ablate-confidence-steps": ablations.confidence_steps,
    "ablate-noc-model": noc_calibration.run,
    "ablate-sensitivity": sensitivity.run,
}


def _run_one(name: str, repeats: int, small: bool, seed: int):
    """Worker entry point: run one experiment (possibly seed-averaged)."""
    started = time.time()
    if repeats > 1:
        result = averaged(EXPERIMENTS[name], repeats=repeats, small=small, seed=seed)
    else:
        result = EXPERIMENTS[name](small=small, seed=seed)
    return name, result, time.time() - started


def _execute(names, args):
    """Yield (name, result, elapsed) for each experiment, honouring --jobs.

    Parallel workers are separate processes, so they do not share the
    precise-reference cache; with many experiments the parallelism still
    wins comfortably.
    """
    if args.jobs <= 1 or len(names) == 1:
        for name in names:
            yield _run_one(name, args.repeats, args.small, args.seed)
        return
    with ProcessPoolExecutor(max_workers=args.jobs) as pool:
        futures = [
            pool.submit(_run_one, name, args.repeats, args.small, args.seed)
            for name in names
        ]
        for future in futures:
            yield future.result()


def main(argv=None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(
        description="Reproduce the tables and figures of Load Value Approximation"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"which to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--small", action="store_true", help="reduced inputs for a quick check"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    parser.add_argument(
        "--markdown", metavar="PATH", help="also write results as a Markdown report"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="average each experiment over N seeds (the paper uses 5)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check each result against the paper's qualitative expectations",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N parallel worker processes",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    results = []
    failures = 0
    for name, result, elapsed in _execute(names, args):
        results.append(result)
        print(result.format_table())
        if args.verify:
            report = verify(name, result)
            print(report.format())
            failures += len(report.failed)
        print(f"[{name} completed in {elapsed:.1f}s]\n")

    if args.json:
        payload = "[\n" + ",\n".join(to_json(r) for r in results) + "\n]\n"
        with open(args.json, "w") as handle:
            handle.write(payload)
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(render_report(results, title="Load Value Approximation — measured results"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
