"""Figure 5: output error of LVA across GHB sizes.

Output error is around or below 10 % for every application except ferret,
whose error metric is pessimistic (Section IV-A); swaptions and x264 sit
near zero. Larger GHBs can *raise* error for workloads whose hashed value
patterns correlate several distinct properties (fluidanimate).
"""

from __future__ import annotations

from typing import List

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_technique,
)
from repro.experiments.fig4 import GHB_SIZES
from repro.experiments.sweep import SweepPoint, technique_point
from repro.sim.tracesim import Mode


def points(small: bool = False, seed: int = 0) -> List[SweepPoint]:
    """Every point here also appears in Figure 4 — the engine dedupes."""
    return [
        technique_point(
            name, Mode.LVA, ApproximatorConfig(ghb_size=ghb), seed=seed, small=small
        )
        for name in BASELINE_WORKLOADS
        for ghb in GHB_SIZES
    ]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep GHB sizes, measuring application output error under LVA."""
    result = ExperimentResult(
        name="Figure 5",
        description="LVA output error for GHB sizes {0,1,2,4}",
        meta={"expectation": "error near or below 10% except ferret"},
    )
    for name in BASELINE_WORKLOADS:
        for ghb in GHB_SIZES:
            config = ApproximatorConfig(ghb_size=ghb)
            lva = run_technique(
                name, Mode.LVA, config=config, seed=seed, small=small
            )
            result.add(f"GHB-{ghb}", name, lva.output_error)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig5", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig5.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig5.points")
