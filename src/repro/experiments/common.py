"""Shared infrastructure for the experiment drivers.

The paper's two-phase methodology is mirrored exactly:

* **Phase 1** (design space, Sections VI-A..D): run the workload against a
  :class:`TraceSimulator` in PRECISE mode and in the technique mode under
  study; report MPKI normalized to precise, fetches normalized to precise,
  and application output error versus the precise output.
* **Phase 2** (full system, Section VI-E): capture a 4-thread trace from
  the precise run and replay it through :class:`FullSystemSimulator` with
  and without approximation.

Precise reference runs are cached per (workload, seed, scale) because every
sweep point needs the same baseline.
"""

from __future__ import annotations

import functools
import math
import os
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro import envspec, faults, telemetry
from repro.core.config import ApproximatorConfig
from repro.predictors import registry as predictor_registry
from repro.energy.model import EnergyBreakdown
from repro.experiments import diskcache, tracestore
from repro.fullsystem import FullSystemConfig, FullSystemResult, FullSystemSimulator
from repro.sim.trace import PackedTrace, Trace, TraceRecorder
from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.registry import get_workload, workload_names

if TYPE_CHECKING:  # avoid the common <-> sweep import cycle at runtime
    from repro.experiments.sweep import SweepPoint

#: Canonical workload order used by every figure.
BASELINE_WORKLOADS: Tuple[str, ...] = tuple(workload_names())

#: Phase-2 workload parameter overrides — the paper's full-system runs use
#: the smaller *simmedium* inputs; these overrides play the same role,
#: rebalancing compute per miss for the scaled-down 16 KB L1 platform.
PHASE2_PARAMS: Dict[str, dict] = {
    "canneal": {"compute_cost": 1600},
    "bodytrack": {"compute_cost": 400},
}


@dataclass
class ExperimentResult:
    """A table/figure reproduction: labelled series of per-workload values.

    ``series[label][workload]`` holds the measured value; ``meta`` records
    experiment-level context (units, the paper's headline numbers, etc.).
    """

    name: str
    description: str
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def add(self, label: str, workload: str, value: float) -> None:
        """Record one measured point."""
        self.series.setdefault(label, {})[workload] = value

    def average(self, label: str) -> float:
        """Arithmetic mean of one series across workloads.

        FAILED cells (NaN, from sweep points that exhausted their
        retries) are excluded so one lost point does not poison the
        whole row; an all-failed series averages to NaN.
        """
        values = [v for v in self.series[label].values() if not math.isnan(v)]
        if not values:
            return float("nan") if self.series[label] else 0.0
        return sum(values) / len(values)

    @staticmethod
    def _cell(value: float) -> str:
        """One table cell; NaN renders as an explicit FAILED marker."""
        if math.isnan(value):
            return f"{'FAILED':>12}"
        return f"{value:>12.4f}"

    def format_table(self) -> str:
        """Render the result the way the paper's figure reports it."""
        labels = list(self.series)
        workloads: List[str] = []
        for s in self.series.values():
            for w in s:
                if w not in workloads:
                    workloads.append(w)
        width = max([len(w) for w in workloads] + [9])
        header = f"{'benchmark':<{width}} " + " ".join(f"{l:>12}" for l in labels)
        lines = [f"== {self.name}: {self.description} ==", header]
        for workload in workloads:
            cells = " ".join(
                self._cell(self.series[l].get(workload, float("nan"))) for l in labels
            )
            lines.append(f"{workload:<{width}} {cells}")
        averages = " ".join(self._cell(self.average(l)) for l in labels)
        lines.append(f"{'average':<{width}} {averages}")
        return "\n".join(lines)

    def format_chart(self, label: str, bar_width: int = 48) -> str:
        """Render one series as a horizontal ASCII bar chart.

        Handy for eyeballing a figure's shape straight from the CLI
        without any plotting dependency.
        """
        series = self.series[label]
        if not series:
            return f"{self.name} / {label}: (empty)"
        peak = max(abs(v) for v in series.values()) or 1.0
        name_width = max(len(k) for k in series)
        lines = [f"{self.name} — {label} (full bar = {peak:.4g})"]
        for workload, value in series.items():
            filled = int(round(abs(value) / peak * bar_width))
            bar = "#" * filled
            sign = "-" if value < 0 else ""
            lines.append(f"{workload:<{name_width}} |{bar:<{bar_width}}| {sign}{abs(value):.4f}")
        return "\n".join(lines)


def averaged(
    driver: "Callable[..., ExperimentResult]",
    repeats: int = 5,
    small: bool = False,
    seed: int = 0,
) -> ExperimentResult:
    """Run a driver over ``repeats`` seeds and average every series.

    The paper averages all measurements over 5 simulation runs
    (Section V-A); this wrapper applies the same protocol to any
    experiment driver, using seeds ``seed, seed+1, ...``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    results = [driver(small=small, seed=seed + i) for i in range(repeats)]
    merged = ExperimentResult(
        name=results[0].name,
        description=f"{results[0].description} (mean of {repeats} seeds)",
        meta=dict(results[0].meta),
    )
    for label in results[0].series:
        for workload in results[0].series[label]:
            values = [r.series[label][workload] for r in results]
            merged.add(label, workload, sum(values) / len(values))
    return merged


@runtime_checkable
class ExperimentDriver(Protocol):
    """The one experiment-driver contract.

    Every figure/table module used to expose a duck-typed mix of
    module-level ``run``/``points`` functions; the runner, the sweep
    engine and programmatic callers now all speak to this protocol
    instead:

    * :meth:`points` — declare the sweep points this experiment needs
      (empty for experiments that cannot be decomposed, e.g. the
      full-system replays);
    * :meth:`run_point` — compute one declared point, warming the
      result caches;
    * :meth:`render` — assemble the figure/table, reading those caches.

    The module-level ``run``/``points`` names still exist as
    deprecation shims (see :func:`deprecated_entry`).
    """

    name: str

    def points(self, small: bool = False, seed: int = 0) -> "List[SweepPoint]": ...

    def run_point(self, point: "SweepPoint") -> object: ...

    def render(self, small: bool = False, seed: int = 0) -> ExperimentResult: ...


@dataclass(frozen=True)
class Driver:
    """Concrete :class:`ExperimentDriver` wrapping a driver module's
    render and point-declaration functions."""

    name: str
    render_fn: Callable[..., ExperimentResult]
    points_fn: Optional[Callable[..., "List[SweepPoint]"]] = None

    def points(self, small: bool = False, seed: int = 0) -> "List[SweepPoint]":
        """The sweep points this experiment needs (may be empty)."""
        if self.points_fn is None:
            return []
        return self.points_fn(small=small, seed=seed)

    def run_point(self, point: "SweepPoint") -> object:
        """Compute one point in-process, warming the result caches."""
        from repro.experiments.sweep import execute_point

        return execute_point(point)

    def render(self, small: bool = False, seed: int = 0) -> ExperimentResult:
        """Assemble the figure/table (cheap once the caches are warm)."""
        return self.render_fn(small=small, seed=seed)

    def __call__(self, small: bool = False, seed: int = 0) -> ExperimentResult:
        # Drivers stay callable so seed-averaging helpers and existing
        # ``EXPERIMENTS[name](...)`` call sites keep working.
        return self.render(small=small, seed=seed)


def deprecated_entry(
    driver: ExperimentDriver, method: str, old_name: str
) -> Callable[..., object]:
    """A module-level shim for a pre-protocol entry point.

    Calls ``getattr(driver, method)`` after emitting a
    :class:`DeprecationWarning` naming the replacement. Keeps the old
    ``module.run(...)`` / ``module.points(...)`` call forms working for
    one deprecation cycle.
    """
    target = getattr(driver, method)

    @functools.wraps(target)
    def shim(*args: object, **kwargs: object) -> object:
        warnings.warn(
            f"{old_name}() is deprecated; use the ExperimentDriver protocol "
            f"({driver.name} DRIVER.{method}()) or repro.api.run_experiment()",
            DeprecationWarning,
            stacklevel=2,
        )
        return target(*args, **kwargs)

    return shim


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used for normalized ratios)."""
    values = [max(v, 1e-12) for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


# --------------------------------------------------------------------- #
# Phase 1                                                               #
# --------------------------------------------------------------------- #

@dataclass
class PreciseReference:
    """Cached precise-execution baseline for one workload instance."""

    output: object
    instructions: int
    mpki: float
    fetches_per_ki: float


def failed_precise_reference(message: str) -> PreciseReference:
    """A baseline placeholder for a permanently failed sweep point.

    Backfilled into the in-memory cache only (never the disk cache) so
    drivers can still assemble their tables — every dependent cell
    renders as FAILED via NaN.
    """
    return PreciseReference(
        output={"failed": message},
        instructions=0,
        mpki=float("nan"),
        fetches_per_ki=float("nan"),
    )


_PRECISE_CACHE: Dict[Tuple[str, int, bool, tuple], PreciseReference] = {}


#: Per-process counts of simulations actually *executed* (cache misses all
#: the way down). The sweep engine aggregates these across workers to
#: verify its exactly-once guarantee for precise baselines.
@dataclass
class ComputeCounters:
    """How many results this process computed vs. served from a cache."""

    precise_computed: int = 0
    precise_memory_hits: int = 0
    precise_disk_hits: int = 0
    technique_computed: int = 0
    technique_memory_hits: int = 0
    technique_disk_hits: int = 0
    traces_captured: int = 0
    trace_memory_hits: int = 0
    trace_store_hits: int = 0
    fullsystem_computed: int = 0
    fullsystem_memory_hits: int = 0
    fullsystem_disk_hits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "precise_computed": self.precise_computed,
            "precise_memory_hits": self.precise_memory_hits,
            "precise_disk_hits": self.precise_disk_hits,
            "technique_computed": self.technique_computed,
            "technique_memory_hits": self.technique_memory_hits,
            "technique_disk_hits": self.technique_disk_hits,
            "traces_captured": self.traces_captured,
            "trace_memory_hits": self.trace_memory_hits,
            "trace_store_hits": self.trace_store_hits,
            "fullsystem_computed": self.fullsystem_computed,
            "fullsystem_memory_hits": self.fullsystem_memory_hits,
            "fullsystem_disk_hits": self.fullsystem_disk_hits,
        }

    def merge(self, other: Dict[str, int]) -> None:
        """Accumulate a worker's counter snapshot into this one."""
        for field_name, value in other.items():
            setattr(self, field_name, getattr(self, field_name) + value)


COMPUTE_COUNTERS = ComputeCounters()


def _workload(name: str, small: bool, params: Optional[dict] = None):
    return get_workload(name, params=params, small=small)


def _precise_disk_key(
    name: str, seed: int, small: bool, params_items: tuple
) -> str:
    return diskcache.point_key(
        "precise", workload=name, seed=seed, small=small, params=params_items
    )


def technique_disk_key(
    name: str,
    mode: Mode,
    config: Optional[ApproximatorConfig],
    prefetch_degree: int,
    seed: int,
    small: bool,
    params_items: tuple,
    fault_spec: str = "",
    predictor_override: str = "",
) -> str:
    """The disk-cache key of one technique point.

    An active memory-fault spec is a distinct key component (omitted
    entirely when clean, keeping clean keys stable across releases) so
    corrupted-run results can never be served to clean runs. The
    ``REPRO_PREDICTOR`` override gets the same treatment: it retargets
    what a ``Mode.PREDICTOR`` point computes, so it must be a key
    component — omitted when inactive so historical keys stay stable.
    """
    components = dict(
        workload=name,
        mode=mode,
        config=config if config is not None else ApproximatorConfig(),
        prefetch_degree=prefetch_degree,
        seed=seed,
        small=small,
        params=params_items,
    )
    if fault_spec:
        components["faults"] = fault_spec
    if predictor_override:
        components["predictor_override"] = predictor_override
    return diskcache.point_key("technique", **components)


def run_precise_reference(
    name: str, seed: int = 0, small: bool = False, params: Optional[dict] = None
) -> PreciseReference:
    """Precise run through the phase-1 simulator.

    Three cache layers are consulted in order: the in-process dict, the
    on-disk :mod:`~repro.experiments.diskcache` layer (shared across
    worker processes and invocations), then the simulation itself. The
    simulations are deterministic, so every layer returns identical data.
    """
    params_items = tuple(sorted((params or {}).items()))
    key = (name, seed, small, params_items)
    cached = _PRECISE_CACHE.get(key)
    if cached is not None:
        COMPUTE_COUNTERS.precise_memory_hits += 1
        return cached
    disk = diskcache.active_cache()
    disk_key = None
    if disk is not None:
        disk_key = _precise_disk_key(name, seed, small, params_items)
        stored = disk.get(disk_key)
        if isinstance(stored, PreciseReference):
            COMPUTE_COUNTERS.precise_disk_hits += 1
            _PRECISE_CACHE[key] = stored
            return stored
    # Precise references always execute clean: injected memory faults are
    # suppressed so error under faults is measured against an
    # uncorrupted baseline.
    with faults.no_memory_faults():
        workload = _workload(name, small, params)
        sim = TraceSimulator(Mode.PRECISE)
        output = workload.execute(sim, seed)
        stats = sim.finish()
    reference = PreciseReference(
        output=output,
        instructions=stats.instructions,
        mpki=stats.raw_mpki,
        fetches_per_ki=stats.fetches_per_kilo_instruction,
    )
    COMPUTE_COUNTERS.precise_computed += 1
    _PRECISE_CACHE[key] = reference
    if disk is not None:
        disk.put(disk_key, reference)
    return reference


@dataclass
class TechniqueResult:
    """One phase-1 measurement of a technique against its precise baseline."""

    normalized_mpki: float
    normalized_fetches: float
    output_error: float
    coverage: float
    instruction_variation: float
    static_approx_pcs: int
    raw: dict


def failed_technique_result(message: str) -> TechniqueResult:
    """A placeholder for a technique point that exhausted its retries.

    NaN metric fields render as FAILED cells; the failure reason rides
    along in ``raw``. In-memory backfill only — never written to disk.
    """
    nan = float("nan")
    return TechniqueResult(
        normalized_mpki=nan,
        normalized_fetches=nan,
        output_error=nan,
        coverage=nan,
        instruction_variation=nan,
        static_approx_pcs=0,
        raw={"failed": True, "error": message},
    )


def is_failed(result: object) -> bool:
    """True for the failure placeholders produced by the sweep engine."""
    if isinstance(result, TechniqueResult):
        return bool(result.raw.get("failed"))
    if isinstance(result, PreciseReference):
        return isinstance(result.output, dict) and "failed" in result.output
    if isinstance(result, FullSystemResult):
        return result.failure is not None
    return False


_TECHNIQUE_CACHE: Dict[tuple, TechniqueResult] = {}


def run_technique(
    name: str,
    mode: Mode,
    config: Optional[ApproximatorConfig] = None,
    prefetch_degree: int = 4,
    seed: int = 0,
    small: bool = False,
    params: Optional[dict] = None,
) -> TechniqueResult:
    """Run one workload under one technique; normalize against precise.

    Results are cached on the full configuration: different figures sweep
    overlapping design points (e.g. Figures 4 and 5 share every LVA run),
    so the cache roughly halves the cost of regenerating the whole
    evaluation in one process. Simulations are deterministic, making the
    cache semantically invisible.
    """
    params_items = tuple(sorted((params or {}).items()))
    fault_spec = faults.active_memory_spec()
    predictor_override = predictor_registry.active_override(mode.value)
    key = (
        name, mode, config, prefetch_degree, seed, small, params_items,
        fault_spec, predictor_override,
    )
    cached = _TECHNIQUE_CACHE.get(key)
    if cached is not None:
        COMPUTE_COUNTERS.technique_memory_hits += 1
        return cached
    disk = diskcache.active_cache()
    disk_key = None
    if disk is not None:
        disk_key = technique_disk_key(
            name, mode, config, prefetch_degree, seed, small, params_items,
            fault_spec, predictor_override,
        )
        stored = disk.get(disk_key)
        if isinstance(stored, TechniqueResult):
            COMPUTE_COUNTERS.technique_disk_hits += 1
            _TECHNIQUE_CACHE[key] = stored
            return stored
    reference = run_precise_reference(name, seed, small, params)
    workload = _workload(name, small, params)
    sim = TraceSimulator(
        mode, approximator_config=config, prefetch_degree=prefetch_degree
    )
    output = workload.execute(sim, seed)
    stats = sim.finish()
    error = workload.output_error(reference.output, output)
    normalized_mpki = stats.mpki / reference.mpki if reference.mpki else 1.0
    normalized_fetches = (
        stats.fetches_per_kilo_instruction / reference.fetches_per_ki
        if reference.fetches_per_ki
        else 1.0
    )
    variation = (
        abs(stats.instructions - reference.instructions) / reference.instructions
        if reference.instructions
        else 0.0
    )
    outcome = TechniqueResult(
        normalized_mpki=normalized_mpki,
        normalized_fetches=normalized_fetches,
        output_error=error,
        coverage=stats.coverage,
        instruction_variation=variation,
        static_approx_pcs=len(stats.static_approx_pcs),
        raw=stats.as_dict(),
    )
    COMPUTE_COUNTERS.technique_computed += 1
    _TECHNIQUE_CACHE[key] = outcome
    if disk is not None:
        disk.put(disk_key, outcome)
    return outcome


# --------------------------------------------------------------------- #
# Phase 2                                                               #
# --------------------------------------------------------------------- #

#: Environment variable bounding the in-process packed-trace LRU (entry
#: count; default 4 — phase-2 figures iterate one workload at a time, so
#: a handful of entries covers every access pattern we have). Declared
#: (with its cache-key classification) in :mod:`repro.envspec`.
TRACE_LRU_ENV = envspec.TRACE_LRU_ENV

_TRACE_LRU_DEFAULT = 4


def _trace_lru_capacity() -> int:
    """The LRU bound, re-read from the environment on every eviction."""
    try:
        return max(1, int(os.environ.get(TRACE_LRU_ENV, _TRACE_LRU_DEFAULT)))
    except ValueError:
        return _TRACE_LRU_DEFAULT


class _PackedTraceLRU:
    """A small, bounded in-process cache of packed traces.

    The persistent tier is the memory-mapped
    :mod:`~repro.experiments.tracestore`; this layer only avoids
    re-validating and re-opening the store entry on consecutive accesses
    to the same trace. Bounded (unlike its unbounded dict predecessor) so
    a multi-workload run no longer retains every trace forever.
    """

    def __init__(self) -> None:
        self._entries: "OrderedDict[Tuple[str, int, bool], PackedTrace]" = (
            OrderedDict()
        )

    def get(self, key: Tuple[str, int, bool]) -> Optional[PackedTrace]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Tuple[str, int, bool], trace: PackedTrace) -> None:
        self._entries[key] = trace
        self._entries.move_to_end(key)
        capacity = _trace_lru_capacity()
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries


_TRACE_CACHE = _PackedTraceLRU()


def trace_disk_key(name: str, seed: int, small: bool) -> str:
    """The trace-store key of one (workload, seed, scale) capture."""
    return tracestore.trace_key(name, seed, small, PHASE2_PARAMS.get(name))


def capture_trace(name: str, seed: int = 0, small: bool = False) -> PackedTrace:
    """The packed 4-thread load trace of a precise phase-1 run (cached).

    Full-system workloads use the :data:`PHASE2_PARAMS` input scaling, the
    analogue of the paper switching from simlarge to simmedium. Three
    layers are consulted in order: a small in-process LRU, the
    memory-mapped cross-process :mod:`~repro.experiments.tracestore`
    (columns shared zero-copy between sweep workers), then the workload
    itself is executed and the capture published to the store.
    """
    key = (name, seed, small)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        COMPUTE_COUNTERS.trace_memory_hits += 1
        return cached
    store = tracestore.active_store()
    store_key = None
    if store is not None:
        store_key = trace_disk_key(name, seed, small)
        stored = store.get(store_key)
        if stored is not None:
            COMPUTE_COUNTERS.trace_store_hits += 1
            _TRACE_CACHE.put(key, stored)
            return stored
    params = PHASE2_PARAMS.get(name)
    # Traces are precise replays: always captured clean (see
    # run_precise_reference). The timing below feeds telemetry gauges
    # only — it never touches the captured trace or any cache key.
    started = time.perf_counter()  # lva: ignore[LVA008]
    with faults.no_memory_faults():
        workload = _workload(name, small, params)
        recorder = TraceRecorder()
        sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
        workload.execute(sim, seed)
        sim.finish()
    packed = recorder.trace.pack()
    elapsed = time.perf_counter() - started  # lva: ignore[LVA008]
    COMPUTE_COUNTERS.traces_captured += 1
    if telemetry.enabled():
        registry = telemetry.metrics()
        registry.counter("trace.capture.count").add(1)
        if elapsed > 0:
            registry.gauge("trace.capture.events_per_s").set(len(packed) / elapsed)
    _TRACE_CACHE.put(key, packed)
    if store is not None:
        store.put(store_key, packed)
    return packed


def run_fullsystem(
    trace: Union[Trace, PackedTrace],
    approximate: bool = False,
    approximator: Optional[ApproximatorConfig] = None,
) -> FullSystemResult:
    """Replay a trace through the Table II platform."""
    config = FullSystemConfig(approximate=approximate, approximator=approximator)
    # Telemetry-only wall timing; the replay result is time-independent.
    started = time.perf_counter()  # lva: ignore[LVA008]
    result = FullSystemSimulator(config).run(trace)
    if telemetry.enabled():
        from repro.sim import kernels

        elapsed = time.perf_counter() - started  # lva: ignore[LVA008]
        registry = telemetry.metrics()
        registry.counter("trace.replay.count").add(1)
        registry.counter(f"trace.replay.path.{kernels.select_fullsystem_path()}").add(1)
        if elapsed > 0:
            registry.gauge("trace.replay.events_per_s").set(len(trace) / elapsed)
    return result


def failed_fullsystem_result(message: str) -> FullSystemResult:
    """A placeholder for a full-system point that exhausted its retries.

    NaN timing/energy fields render as FAILED cells through the figure
    drivers' ratio properties. In-memory backfill only — never written
    to disk.
    """
    nan = float("nan")
    return FullSystemResult(
        cycles=nan,
        instructions=0,
        loads=0,
        raw_misses=0,
        covered_misses=0,
        fetches=0,
        l2_accesses=0,
        memory_accesses=0,
        noc_flit_hops=0,
        approximator_accesses=0,
        total_miss_latency=nan,
        energy=EnergyBreakdown(),
        core_cycles=[],
        failure=message,
    )


_FULLSYSTEM_CACHE: Dict[tuple, FullSystemResult] = {}


def fullsystem_disk_key(
    name: str,
    approximate: bool,
    config: Optional[ApproximatorConfig],
    seed: int,
    small: bool,
) -> str:
    """The disk-cache key of one full-system replay point.

    The trace schema version participates so replay results computed
    from an older trace format can never outlive it.
    """
    return diskcache.point_key(
        "fullsystem",
        workload=name,
        approximate=approximate,
        config=config if config is not None else ApproximatorConfig(),
        seed=seed,
        small=small,
        trace_schema=tracestore.TRACE_SCHEMA_VERSION,
    )


def run_fullsystem_point(
    name: str,
    approximate: bool = False,
    approximator: Optional[ApproximatorConfig] = None,
    seed: int = 0,
    small: bool = False,
) -> FullSystemResult:
    """One cached full-system replay (capture_trace + run_fullsystem).

    The phase-2 analogue of :func:`run_technique`: in-process dict, then
    the shared disk cache, then the replay itself (whose trace comes from
    :func:`capture_trace`'s own three layers). Deterministic, so every
    layer returns identical data.
    """
    key = (name, approximate, approximator, seed, small)
    cached = _FULLSYSTEM_CACHE.get(key)
    if cached is not None:
        COMPUTE_COUNTERS.fullsystem_memory_hits += 1
        return cached
    disk = diskcache.active_cache()
    disk_key = None
    if disk is not None:
        disk_key = fullsystem_disk_key(name, approximate, approximator, seed, small)
        stored = disk.get(disk_key)
        if isinstance(stored, FullSystemResult):
            COMPUTE_COUNTERS.fullsystem_disk_hits += 1
            _FULLSYSTEM_CACHE[key] = stored
            return stored
    trace = capture_trace(name, seed=seed, small=small)
    result = run_fullsystem(trace, approximate=approximate, approximator=approximator)
    COMPUTE_COUNTERS.fullsystem_computed += 1
    _FULLSYSTEM_CACHE[key] = result
    if disk is not None:
        disk.put(disk_key, result)
    return result


def reset_caches() -> None:
    """Drop cached references, technique results and traces — every layer.

    Also clears the persistent disk cache and trace store (when enabled)
    and the compute counters, so a reset really does force fresh
    simulations.
    """
    _PRECISE_CACHE.clear()
    _TECHNIQUE_CACHE.clear()
    _TRACE_CACHE.clear()
    _FULLSYSTEM_CACHE.clear()
    disk = diskcache.active_cache()
    if disk is not None:
        disk.clear()
    store = tracestore.active_store()
    if store is not None:
        store.clear()
    global COMPUTE_COUNTERS
    COMPUTE_COUNTERS = ComputeCounters()
