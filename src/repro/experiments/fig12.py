"""Figure 12: number of static (distinct) PCs of approximate loads.

Because only annotated data is approximated, the number of static load
instructions reaching the approximator is small — at most ~300 (x264) in
the paper — which is why a PC-only index (GHB 0) works and why even much
smaller approximator tables suffice (Section VII-A).
"""

from __future__ import annotations

from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_technique,
)
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    return [
        technique_point(name, Mode.LVA, seed=seed, small=small)
        for name in BASELINE_WORKLOADS
    ]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Count distinct approximate-load PCs per benchmark."""
    result = ExperimentResult(
        name="Figure 12",
        description="static (distinct) PC count of approximate loads",
        meta={"expectation": "small counts; x264 the largest"},
    )
    for name in BASELINE_WORKLOADS:
        lva = run_technique(name, Mode.LVA, seed=seed, small=small)
        result.add("static_approx_pcs", name, float(lva.static_approx_pcs))
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig12", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig12.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig12.points")
