"""Figure 6: relaxed confidence estimation — MPKI and error vs window.

Confidence windows of 0 % (exact matching, i.e. ideal-LVP-style), 5 %,
10 %, 20 % and infinitely relaxed are applied to *both* integer and
floating-point data (unlike the baseline, which exempts integers). The
trade-off: wider windows approximate more often (lower MPKI) at the cost
of output integrity; with an infinite window the confidence counter never
decrements and every warm miss is approximated.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import INFINITE_WINDOW, ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_technique,
)
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode

#: (label, window) points of the sweep.
WINDOWS: Tuple[Tuple[str, float], ...] = (
    ("0%", 0.0),
    ("5%", 0.05),
    ("10%", 0.10),
    ("20%", 0.20),
    ("infinite", INFINITE_WINDOW),
)


def _config(window: float) -> ApproximatorConfig:
    # Both data types employ confidence in this sweep; an infinite window
    # makes every training increment the counter, so warm entries are
    # always approximated — the paper's "infinitely relaxed" point.
    return ApproximatorConfig(
        confidence_window=window,
        apply_confidence_to_floats=True,
        apply_confidence_to_ints=True,
    )


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    return [
        technique_point(name, Mode.LVA, _config(window), seed=seed, small=small)
        for name in BASELINE_WORKLOADS
        for _, window in WINDOWS
    ]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep relaxed confidence windows, recording MPKI and error."""
    result = ExperimentResult(
        name="Figure 6",
        description="normalized MPKI and output error vs confidence window",
        meta={"expectation": "wider window -> lower MPKI, higher error"},
    )
    for name in BASELINE_WORKLOADS:
        for label, window in WINDOWS:
            lva = run_technique(
                name, Mode.LVA, config=_config(window), seed=seed, small=small
            )
            result.add(f"mpki-{label}", name, lva.normalized_mpki)
            result.add(f"error-{label}", name, lva.output_error)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig6", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig6.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig6.points")
