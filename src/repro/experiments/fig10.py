"""Figure 10: full-system performance and energy vs approximation degree.

Phase-2 replays (Section VI-E): the captured 4-thread traces run through
the Table II platform precisely and with LVA at degrees 0, 2, 4, 8 and 16.
The paper's headline: 8.5 % average speedup (28.6 % for canneal, 13.3 %
for bodytrack) at degree 0, with energy savings growing with degree (7.2 %
at 4, 12.6 % at 16, up to 44.1 % for bodytrack).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_fullsystem_point,
)
from repro.experiments.sweep import SweepPoint, fullsystem_point

DEGREES: Tuple[int, ...] = (0, 2, 4, 8, 16)


def _config(degree: int) -> ApproximatorConfig:
    return ApproximatorConfig(approximation_degree=degree)


def points(small: bool = False, seed: int = 0) -> List[SweepPoint]:
    """The sweep points :func:`run` consumes (for the parallel engine).

    One precise-baseline replay plus one LVA replay per degree, per
    workload. The engine pre-captures each workload's trace once into
    the shared trace store, so the fan-out replays map it instead of
    re-running the workload.
    """
    pts: List[SweepPoint] = []
    for name in BASELINE_WORKLOADS:
        pts.append(fullsystem_point(name, seed=seed, small=small))
        for degree in DEGREES:
            pts.append(fullsystem_point(name, _config(degree), seed=seed, small=small))
    return pts


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Replay each workload full-system, sweeping approximation degree."""
    result = ExperimentResult(
        name="Figure 10",
        description="full-system speedup and dynamic energy savings vs degree",
        meta={
            "paper_average_speedup": 0.085,
            "paper_energy_savings": {"degree4": 0.072, "degree16": 0.126},
        },
    )
    for name in BASELINE_WORKLOADS:
        baseline = run_fullsystem_point(name, seed=seed, small=small)
        for degree in DEGREES:
            lva = run_fullsystem_point(
                name,
                approximate=True,
                approximator=_config(degree),
                seed=seed,
                small=small,
            )
            result.add(f"speedup-approx-{degree}", name, lva.speedup_over(baseline))
            result.add(
                f"energy-approx-{degree}", name, lva.energy_savings_over(baseline)
            )
        result.add("baseline-miss-latency", name, baseline.average_miss_latency)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig10", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig10.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig10.points")
