"""Result reporting: JSON and Markdown renderings of experiment results.

The drivers return structured :class:`ExperimentResult` objects; this
module turns them into artefacts — a machine-readable JSON dump for
regression tracking and a Markdown table for EXPERIMENTS.md-style reports.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.experiments.common import ExperimentResult


def to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialise one result (series + averages + meta) as JSON."""
    payload = {
        "name": result.name,
        "description": result.description,
        "series": result.series,
        "averages": {label: result.average(label) for label in result.series},
        "meta": {k: _jsonable(v) for k, v in result.meta.items()},
    }
    return json.dumps(payload, indent=indent, sort_keys=False)


def _jsonable(value: object) -> object:
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


def to_markdown(result: ExperimentResult, precision: int = 4) -> str:
    """Render one result as a GitHub-flavoured Markdown table."""
    labels = list(result.series)
    rows: List[str] = []
    for series in result.series.values():
        for workload in series:
            if workload not in rows:
                rows.append(workload)

    lines = [
        f"### {result.name}",
        "",
        result.description,
        "",
        "| benchmark | " + " | ".join(labels) + " |",
        "|" + "---|" * (len(labels) + 1),
    ]
    for workload in rows:
        cells = [
            (
                f"{result.series[label][workload]:.{precision}f}"
                if workload in result.series[label]
                else "—"
            )
            for label in labels
        ]
        lines.append(f"| {workload} | " + " | ".join(cells) + " |")
    averages = [f"{result.average(label):.{precision}f}" for label in labels]
    lines.append("| **average** | " + " | ".join(averages) + " |")
    return "\n".join(lines)


def render_report(results: Iterable[ExperimentResult], title: str = "Results") -> str:
    """Concatenate several results into one Markdown document."""
    parts = [f"# {title}", ""]
    for result in results:
        parts.append(to_markdown(result))
        parts.append("")
    return "\n".join(parts)
