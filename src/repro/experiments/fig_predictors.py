"""Predictor zoo: cross-predictor MPKI / coverage / error comparison.

Every registered predictor runs over every benchmark through
``Mode.PREDICTOR`` — the same point engine, caches and normalization as
the paper's figures, with ``config.predictor`` as the sweep axis (each
predictor therefore gets its own cache/disk keys). Three metric families
per predictor:

* ``mpki:*`` — effective MPKI normalized to precise execution;
* ``cov:*`` — fraction of approximable misses covered (approximated,
  or validated-correct for the rollback predictors);
* ``err:*`` — application output error (zero by construction for the
  rollback predictors LVP and CLP).

The ``lva``/``lvp`` columns are bit-identical to ``Mode.LVA`` /
``Mode.LVP`` runs of the same config — the registry resolves the exact
historical implementations (pinned by ``tests/experiments/test_fig_predictors.py``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    Driver,
    ExperimentResult,
    deprecated_entry,
    run_technique,
)
from repro.experiments.sweep import SweepPoint, technique_point
from repro.sim.tracesim import Mode

#: The registry predictors the comparison sweeps. A fixed tuple rather
#: than available_predictors() so the table layout is stable even when
#: out-of-tree predictors have registered themselves in-process.
PREDICTORS: Tuple[str, ...] = ("lva", "lvp", "clp", "hybrid")


def _config(predictor: str) -> ApproximatorConfig:
    return ApproximatorConfig(predictor=predictor)


def points(small: bool = False, seed: int = 0) -> List[SweepPoint]:
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    out: List[SweepPoint] = []
    for name in BASELINE_WORKLOADS:
        for predictor in PREDICTORS:
            out.append(
                technique_point(
                    name, Mode.PREDICTOR, _config(predictor), seed=seed, small=small
                )
            )
    return out


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep every registered predictor over every benchmark."""
    result = ExperimentResult(
        name="Predictor zoo",
        description=(
            "normalized MPKI / coverage / output error per registry predictor"
        ),
        meta={
            "predictors": ", ".join(PREDICTORS),
            "expectation": (
                "lva matches Mode.LVA bit-for-bit; lvp and clp report zero "
                "output error (rollback); hybrid trades coverage for error"
            ),
        },
    )
    for name in BASELINE_WORKLOADS:
        for predictor in PREDICTORS:
            r = run_technique(
                name, Mode.PREDICTOR, config=_config(predictor), seed=seed, small=small
            )
            result.add(f"mpki:{predictor}", name, r.normalized_mpki)
            result.add(f"cov:{predictor}", name, r.coverage)
            result.add(f"err:{predictor}", name, r.output_error)
    return result


#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig_predictors", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig_predictors.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig_predictors.points")
