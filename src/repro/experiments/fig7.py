"""Figure 7: value delay — MPKI and error for delays of 4, 8, 16, 32.

Value delay means the approximator trains on stale values. LVA tolerates
it: MPKI shifts because confidence calculations skew, but output error is
essentially unaffected for every benchmark except canneal, whose <x, y>
positions are constantly swapped by the annealer so stale values really do
change the cost-function outcomes.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import ApproximatorConfig
from repro.experiments.common import (
    BASELINE_WORKLOADS,
    ExperimentResult,
    run_technique,
)
from repro.experiments.sweep import technique_point
from repro.sim.tracesim import Mode

DELAYS: Tuple[int, ...] = (4, 8, 16, 32)


def points(small: bool = False, seed: int = 0):
    """The sweep points :func:`run` consumes (for the parallel engine)."""
    return [
        technique_point(
            name, Mode.LVA, ApproximatorConfig(value_delay=delay), seed=seed, small=small
        )
        for name in BASELINE_WORKLOADS
        for delay in DELAYS
    ]


def run(small: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep the value delay, recording MPKI and error."""
    result = ExperimentResult(
        name="Figure 7",
        description="normalized MPKI and output error vs value delay",
        meta={
            "expectation": "resilient to delay; only canneal's error moves"
        },
    )
    for name in BASELINE_WORKLOADS:
        for delay in DELAYS:
            config = ApproximatorConfig(value_delay=delay)
            lva = run_technique(
                name, Mode.LVA, config=config, seed=seed, small=small
            )
            result.add(f"mpki-delay-{delay}", name, lva.normalized_mpki)
            result.add(f"error-delay-{delay}", name, lva.output_error)
    return result

from repro.experiments.common import Driver, deprecated_entry

#: The :class:`~repro.experiments.common.ExperimentDriver` for this
#: experiment — the supported entry point for programmatic use.
DRIVER = Driver(name="fig7", render_fn=run, points_fn=points)
run = deprecated_entry(DRIVER, "render", "repro.experiments.fig7.run")
points = deprecated_entry(DRIVER, "points", "repro.experiments.fig7.points")
