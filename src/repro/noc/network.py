"""The mesh network: routing + router pipeline + link contention + stats."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.noc.router import Link
from repro.noc.topology import MeshTopology


@dataclass(frozen=True)
class NocConfig:
    """Mesh parameters (Table II: 2x2 mesh, 3-cycle routers).

    Attributes:
        width/height: Mesh dimensions.
        router_latency: Pipeline depth of each router in cycles.
        flit_bytes: Link width; a 64 B cache block becomes
            ``block_bytes / flit_bytes`` flits plus a head flit.
        control_flits: Size of a request/control packet in flits.
    """

    width: int = 2
    height: int = 2
    router_latency: int = 3
    flit_bytes: int = 32
    control_flits: int = 1

    def __post_init__(self) -> None:
        if self.router_latency < 1:
            raise ConfigurationError("router latency must be >= 1")
        if self.flit_bytes < 1:
            raise ConfigurationError("flit width must be >= 1 byte")
        if self.control_flits < 1:
            raise ConfigurationError("control packets need >= 1 flit")

    def data_flits(self, block_bytes: int = 64) -> int:
        """Flits in a data reply carrying one cache block (+ head flit)."""
        return 1 + (block_bytes + self.flit_bytes - 1) // self.flit_bytes


@dataclass
class PacketTimings:
    """Timing of one packet through the mesh."""

    departure: int
    arrival: int

    @property
    def latency(self) -> int:
        """End-to-end cycles including queueing."""
        return self.arrival - self.departure


@dataclass
class NetworkStats:
    """Aggregate network counters (traffic feeds the energy model)."""

    packets: int = 0
    flit_hops: int = 0
    total_latency: int = 0
    total_queueing: int = 0

    @property
    def average_latency(self) -> float:
        """Mean end-to-end packet latency in cycles."""
        return self.total_latency / self.packets if self.packets else 0.0


class MeshNetwork:
    """Packet-level mesh with XY routing and per-link FCFS contention."""

    def __init__(self, config: NocConfig = NocConfig()) -> None:
        self.config = config
        self.topology = MeshTopology(config.width, config.height)
        self.stats = NetworkStats()
        self._links: Dict[Tuple[int, int], Link] = {}

    def _link(self, key: Tuple[int, int]) -> Link:
        link = self._links.get(key)
        if link is None:
            link = Link()
            self._links[key] = link
        return link

    def send(
        self,
        src: int,
        dst: int,
        departure: int,
        flits: int,
        low_priority: bool = False,
    ) -> PacketTimings:
        """Send a ``flits``-flit packet from ``src`` to ``dst`` at ``departure``.

        The head flit pays the router pipeline at every hop (plus the
        injection router); the tail follows at one flit per cycle, queueing
        behind earlier packets on each link. Local (src == dst) deliveries
        pay a single router traversal. ``low_priority`` packets ride
        leftover bandwidth and never delay demand traffic (the Aergia-style
        deprioritization of approximated fetches, Section VI-C).
        """
        route = self.topology.route(src, dst)
        self.stats.packets += 1
        if not route:
            arrival = departure + self.config.router_latency
            self.stats.total_latency += arrival - departure
            return PacketTimings(departure, arrival)
        queueing = 0
        # Wormhole switching: the head flit pays the router pipeline at each
        # hop (plus injection) and may queue for a busy link; the body
        # pipelines behind it, so serialization is paid once at the end.
        head = departure + self.config.router_latency  # injection router
        for hop in route:
            head += self.config.router_latency
            link = self._link(hop)
            start = link.transfer(head, flits, low_priority=low_priority) - flits
            queueing += start - head
            head = start
            self.stats.flit_hops += flits
        arrival = head + flits
        self.stats.total_latency += arrival - departure
        self.stats.total_queueing += queueing
        return PacketTimings(departure, arrival)

    def request_reply(
        self, src: int, dst: int, departure: int, block_bytes: int = 64
    ) -> PacketTimings:
        """A control request to ``dst`` followed by a data reply to ``src``.

        Returns timings whose ``arrival`` is when the data reply's tail
        reaches ``src`` (the service time at ``dst`` is added by the
        caller between the two legs via :meth:`send` if it needs finer
        control; this helper assumes zero service time).
        """
        request = self.send(src, dst, departure, self.config.control_flits)
        reply = self.send(dst, src, request.arrival, self.config.data_flits(block_bytes))
        return PacketTimings(departure, reply.arrival)

    def reset(self) -> None:
        """Clear link occupancy and statistics."""
        self._links.clear()
        self.stats = NetworkStats()
