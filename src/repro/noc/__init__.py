"""Network-on-chip model (the paper models a 2x2 mesh with BookSim).

A packet-level mesh: XY dimension-order routing, 3-cycle router pipeline
per hop (Table II), one-flit-per-cycle links with per-link FIFO contention.
Request packets are a single flit; data replies carry a 64 B cache block
(block/flit-width flits).
"""

from repro.noc.detailed import (
    DetailedMeshNetwork,
    DetailedNocConfig,
    DetailedNocStats,
)
from repro.noc.network import MeshNetwork, NocConfig, PacketTimings
from repro.noc.router import Link
from repro.noc.topology import MeshTopology

__all__ = [
    "DetailedMeshNetwork",
    "DetailedNocConfig",
    "DetailedNocStats",
    "Link",
    "MeshNetwork",
    "MeshTopology",
    "NocConfig",
    "PacketTimings",
]
