"""A cycle-driven, flit-level wormhole mesh router model.

The paper's full-system phase uses BookSim, a detailed cycle-accurate NoC
simulator. The fast link-reservation model in :mod:`repro.noc.network` is
what the full-system replay uses (Python cannot afford flit-level detail
for hundreds of thousands of packets), and *this* module is the detailed
reference it is calibrated against: input-buffered routers with virtual
channels, credit-based flow control, XY routing, per-output wormhole
grants and round-robin switch arbitration.

The ``ablate-noc-model`` experiment drives both models with identical
synthetic traffic and compares their latency/throughput behaviour; the
detailed model is also usable standalone for NoC studies:

    >>> net = DetailedMeshNetwork(DetailedNocConfig())
    >>> net.inject(src=0, dst=3, size_flits=5, time=0)
    0
    >>> stats = net.run(max_cycles=100)
    >>> stats.delivered
    1
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.noc.topology import MeshTopology

#: Port identifiers: four mesh directions plus local injection/ejection.
LOCAL, NORTH, SOUTH, EAST, WEST = range(5)
_PORTS = (LOCAL, NORTH, SOUTH, EAST, WEST)


@dataclass(frozen=True)
class DetailedNocConfig:
    """Detailed-router parameters.

    Attributes:
        width/height: Mesh dimensions.
        vcs: Virtual channels per input port.
        buffer_depth: Flit slots per VC buffer.
        router_latency: Pipeline cycles a flit spends in a router before it
            can compete for the crossbar (matches the fast model's 3).
    """

    width: int = 2
    height: int = 2
    vcs: int = 2
    buffer_depth: int = 4
    router_latency: int = 3

    def __post_init__(self) -> None:
        if self.vcs < 1:
            raise ConfigurationError("need at least one virtual channel")
        if self.buffer_depth < 1:
            raise ConfigurationError("buffer depth must be >= 1")
        if self.router_latency < 1:
            raise ConfigurationError("router latency must be >= 1")


@dataclass
class _Flit:
    packet_id: int
    dst: int
    is_head: bool
    is_tail: bool
    #: Cycle at which the flit becomes eligible for switch allocation in
    #: its current router (models the router pipeline).
    ready_at: int = 0


@dataclass
class _Packet:
    id: int
    src: int
    dst: int
    size: int
    inject_time: int
    arrival_time: Optional[int] = None


class _VCBuffer:
    """One virtual-channel FIFO with a fixed credit budget."""

    __slots__ = ("depth", "flits")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.flits: Deque[_Flit] = deque()

    @property
    def has_credit(self) -> bool:
        return len(self.flits) < self.depth

    def head(self) -> Optional[_Flit]:
        return self.flits[0] if self.flits else None


@dataclass
class DetailedNocStats:
    """Aggregate statistics of a detailed simulation."""

    injected: int = 0
    delivered: int = 0
    total_latency: int = 0
    flit_hops: int = 0

    @property
    def average_latency(self) -> float:
        """Mean packet latency (inject -> tail ejected), cycles."""
        return self.total_latency / self.delivered if self.delivered else 0.0


class DetailedMeshNetwork:
    """Flit-level mesh: inject packets, then :meth:`run` the clock."""

    def __init__(self, config: DetailedNocConfig = DetailedNocConfig()) -> None:
        self.config = config
        self.topology = MeshTopology(config.width, config.height)
        self.stats = DetailedNocStats()
        self.cycle = 0
        self._packets: Dict[int, _Packet] = {}
        self._next_id = 0
        # buffers[node][port][vc]
        self._buffers: List[List[List[_VCBuffer]]] = [
            [
                [_VCBuffer(config.buffer_depth) for _ in range(config.vcs)]
                for _ in _PORTS
            ]
            for _ in range(self.topology.num_nodes)
        ]
        # Wormhole output grants: (node, out_port) -> (in_port, vc) or None.
        self._grants: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {}
        # Round-robin arbitration pointers per (node, out_port).
        self._rr: Dict[Tuple[int, int], int] = {}
        # Pending injections that did not fit the local buffer yet.
        self._inject_queues: List[Deque[_Flit]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]

    # ------------------------------------------------------------------ #
    # Injection                                                          #
    # ------------------------------------------------------------------ #

    def inject(self, src: int, dst: int, size_flits: int, time: Optional[int] = None) -> int:
        """Queue a packet for injection at ``src``; returns its packet id.

        ``time`` defaults to the current cycle; injecting in the past is an
        error.
        """
        when = self.cycle if time is None else time
        if when < self.cycle:
            raise SimulationError("cannot inject in the past")
        if size_flits < 1:
            raise ConfigurationError("packets need at least one flit")
        packet = _Packet(self._next_id, src, dst, size_flits, when)
        self._packets[packet.id] = packet
        self._next_id += 1
        self.stats.injected += 1
        for i in range(size_flits):
            flit = _Flit(
                packet_id=packet.id,
                dst=dst,
                is_head=(i == 0),
                is_tail=(i == size_flits - 1),
                ready_at=when,
            )
            self._inject_queues[src].append(flit)
        return packet.id

    # ------------------------------------------------------------------ #
    # Routing helpers                                                    #
    # ------------------------------------------------------------------ #

    def _output_port(self, node: int, dst: int) -> int:
        """XY dimension-order output port selection."""
        if node == dst:
            return LOCAL
        x, y = self.topology.coords(node)
        dx, dy = self.topology.coords(dst)
        if x < dx:
            return EAST
        if x > dx:
            return WEST
        if y < dy:
            return SOUTH  # +y direction
        return NORTH

    def _neighbour(self, node: int, port: int) -> int:
        x, y = self.topology.coords(node)
        if port == EAST:
            return self.topology.node_at(x + 1, y)
        if port == WEST:
            return self.topology.node_at(x - 1, y)
        if port == SOUTH:
            return self.topology.node_at(x, y + 1)
        if port == NORTH:
            return self.topology.node_at(x, y - 1)
        raise SimulationError(f"port {port} has no neighbour")

    @staticmethod
    def _reverse(port: int) -> int:
        return {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}[port]

    # ------------------------------------------------------------------ #
    # The clock                                                          #
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Advance the network by one cycle."""
        moves: List[Tuple] = []

        # Phase 1: injection — local port VC 0 accepts queued flits.
        for node, queue in enumerate(self._inject_queues):
            if not queue:
                continue
            flit = queue[0]
            if flit.ready_at > self.cycle:
                continue
            vc = self._buffers[node][LOCAL][flit.packet_id % self.config.vcs]
            if vc.has_credit:
                queue.popleft()
                flit.ready_at = self.cycle + self.config.router_latency
                vc.flits.append(flit)

        # Phase 2: switch allocation, one winner per (node, out_port).
        for node in range(self.topology.num_nodes):
            requests: Dict[int, List[Tuple[int, int, _Flit]]] = {}
            for port in _PORTS:
                for vc_id, vc in enumerate(self._buffers[node][port]):
                    flit = vc.head()
                    if flit is None or flit.ready_at > self.cycle:
                        continue
                    out = self._output_port(node, flit.dst)
                    requests.setdefault(out, []).append((port, vc_id, flit))

            for out, candidates in requests.items():
                grant_key = (node, out)
                holder = self._grants.get(grant_key)
                chosen = None
                if holder is not None:
                    for port, vc_id, flit in candidates:
                        if (port, vc_id) == holder:
                            chosen = (port, vc_id, flit)
                            break
                    if chosen is None:
                        continue  # the granted VC has nothing ready
                else:
                    pointer = self._rr.get(grant_key, 0)
                    candidates.sort(key=lambda c: (c[0] * self.config.vcs + c[1] - pointer)
                                    % (len(_PORTS) * self.config.vcs))
                    chosen = candidates[0]
                port, vc_id, flit = chosen

                if out == LOCAL and flit.dst == node:
                    moves.append(("eject", node, port, vc_id, flit, None))
                else:
                    target = self._neighbour(node, out)
                    in_port = self._reverse(out)
                    dest_vc = self._buffers[target][in_port][
                        flit.packet_id % self.config.vcs
                    ]
                    if not dest_vc.has_credit:
                        continue  # back-pressure: stall this output
                    moves.append(("hop", node, port, vc_id, flit, (target, in_port)))

                if flit.is_head:
                    self._grants[grant_key] = (port, vc_id)
                if flit.is_tail:
                    self._grants[grant_key] = None
                    self._rr[grant_key] = (port * self.config.vcs + vc_id + 1) % (
                        len(_PORTS) * self.config.vcs
                    )

        # Phase 3: commit all winning moves simultaneously.
        for kind, node, port, vc_id, flit, target in moves:
            buffer = self._buffers[node][port][vc_id]
            assert buffer.head() is flit
            buffer.flits.popleft()
            if kind == "eject":
                if flit.is_tail:
                    packet = self._packets[flit.packet_id]
                    packet.arrival_time = self.cycle + 1
                    self.stats.delivered += 1
                    self.stats.total_latency += packet.arrival_time - packet.inject_time
            else:
                target_node, in_port = target
                flit.ready_at = self.cycle + self.config.router_latency
                self._buffers[target_node][in_port][
                    flit.packet_id % self.config.vcs
                ].flits.append(flit)
                self.stats.flit_hops += 1

        self.cycle += 1

    def run(self, max_cycles: int = 10_000) -> DetailedNocStats:
        """Step until every injected packet is delivered (or the budget
        runs out); returns the statistics."""
        for _ in range(max_cycles):
            if self.stats.delivered == self.stats.injected and not any(
                self._inject_queues
            ):
                break
            self.step()
        return self.stats

    def packet_latency(self, packet_id: int) -> Optional[int]:
        """Latency of a delivered packet, or None if still in flight."""
        packet = self._packets.get(packet_id)
        if packet is None or packet.arrival_time is None:
            return None
        return packet.arrival_time - packet.inject_time
