"""Link-level contention model.

Each directed mesh link transfers one flit per cycle. A packet of N flits
occupies the link for N cycles; packets arriving while the link is busy
queue behind it. Tracking a single ``busy_until`` time per link gives
first-come-first-served queueing — the dominant contention effect the
paper's BookSim runs capture — without simulating individual flits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LinkStats:
    """Per-link utilisation counters."""

    packets: int = 0
    flits: int = 0
    queueing_cycles: int = 0


class Link:
    """A directed link with single-flit-per-cycle bandwidth and two
    priority classes.

    High-priority (demand) packets arbitrate only among themselves — with
    virtual channels, a high-priority flit never waits behind low-priority
    traffic. Low-priority (background/training) packets use leftover
    bandwidth: they queue behind *both* classes.
    """

    __slots__ = ("busy_until", "busy_until_low", "stats")

    def __init__(self) -> None:
        self.busy_until = 0
        self.busy_until_low = 0
        self.stats = LinkStats()

    def transfer(self, arrival: int, flits: int, low_priority: bool = False) -> int:
        """Send ``flits`` flits arriving at ``arrival``.

        Returns the cycle at which the packet's tail leaves the link,
        accounting for any queueing behind earlier packets of the same (or,
        for low-priority packets, either) class.
        """
        if low_priority:
            start = max(arrival, self.busy_until, self.busy_until_low)
            self.busy_until_low = start + flits
        else:
            start = max(arrival, self.busy_until)
            self.busy_until = start + flits
        self.stats.queueing_cycles += start - arrival
        self.stats.packets += 1
        self.stats.flits += flits
        return start + flits
