"""Mesh topology and XY dimension-order routing."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError


class MeshTopology:
    """A ``width x height`` mesh of nodes, numbered row-major.

    Node ``n`` sits at ``(x, y) = (n % width, n // width)``. Routing is XY
    dimension-order (first along X, then along Y), which is deadlock-free
    and what BookSim's mesh defaults to.
    """

    def __init__(self, width: int = 2, height: int = 2) -> None:
        if width < 1 or height < 1:
            raise ConfigurationError("mesh dimensions must be >= 1")
        self.width = width
        self.height = height

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of a node id."""
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(f"node {node} outside mesh of {self.num_nodes}")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(f"coords ({x}, {y}) outside mesh")
        return y * self.width + x

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """XY route as a list of directed links ``(from_node, to_node)``.

        An empty list means src == dst (a local delivery with no link
        traversal).
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        links: List[Tuple[int, int]] = []
        x, y = sx, sy
        while x != dx:
            nxt = x + (1 if dx > x else -1)
            links.append((self.node_at(x, y), self.node_at(nxt, y)))
            x = nxt
        while y != dy:
            nxt = y + (1 if dy > y else -1)
            links.append((self.node_at(x, y), self.node_at(x, nxt)))
            y = nxt
        return links

    def hop_count(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)
