"""Annotation auditing: tooling for the Section IV programmer guidelines.

The paper relies on EnerJ-style annotations and gives programmers rules:
never approximate memory addresses or pointers, avoid data used as
divisors, be careful with data that steers control flow, and focus on the
common case rather than cold code. This module provides a dynamic checker
in that spirit: run a workload once against an :class:`AuditingMemory` and
get a report of suspicious annotations, based on the observed value
streams of every annotated load site.

Heuristics (each maps to a Section IV guideline):

* ``zero-divisor-risk`` — an annotated site produced values at or near
  zero; if any consumer divides by this value, an approximation of zero
  crashes the program (the Divide-By-Zero guideline).
* ``address-like`` — an annotated integer site produced values that fall
  inside allocated memory regions; annotated pointers/indices can have
  catastrophic effects (the Memory Addresses guideline).
* ``boolean-flag`` — an annotated integer site only ever produced values
  in {0, 1}; flags almost always steer control flow (the Control Flow
  guideline).
* ``cold-site`` — an annotated site executed very few times; annotation
  effort should target the common case (the Common Case guideline).

These are heuristics over dynamic evidence, not proofs: the report is a
review aid, exactly like a linter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.sim.frontend import PreciseMemory

Number = Union[int, float]


@dataclass
class SiteProfile:
    """Observed behaviour of one annotated load site (PC)."""

    pc: int
    loads: int = 0
    is_float: bool = True
    min_value: float = float("inf")
    max_value: float = float("-inf")
    near_zero_loads: int = 0
    address_like_loads: int = 0
    distinct_small_values: set = field(default_factory=set)

    def observe(self, value: Number, address_like: bool, zero_eps: float) -> None:
        """Fold one loaded value into the profile."""
        self.loads += 1
        number = float(value)
        self.min_value = min(self.min_value, number)
        self.max_value = max(self.max_value, number)
        if abs(number) <= zero_eps:
            self.near_zero_loads += 1
        if address_like:
            self.address_like_loads += 1
        if len(self.distinct_small_values) <= 4:
            self.distinct_small_values.add(value)


@dataclass(frozen=True)
class AnnotationWarning:
    """One suspicious annotation, with the evidence that triggered it."""

    pc: int
    kind: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] pc={self.pc:#x}: {self.message}"


@dataclass
class AuditReport:
    """All warnings produced by one audited run."""

    warnings: List[AnnotationWarning]
    sites: Dict[int, SiteProfile]

    @property
    def ok(self) -> bool:
        """True when no guideline heuristic fired."""
        return not self.warnings

    def by_kind(self, kind: str) -> List[AnnotationWarning]:
        """Warnings of one kind."""
        return [w for w in self.warnings if w.kind == kind]

    def format(self) -> str:
        """Human-readable summary."""
        lines = [
            f"annotation audit: {len(self.sites)} annotated sites, "
            f"{len(self.warnings)} warnings"
        ]
        lines.extend(f"  {warning}" for warning in self.warnings)
        return "\n".join(lines)


class AuditingMemory(PreciseMemory):
    """A precise front-end that profiles every annotated load.

    Values are never clobbered — the audit observes the *precise* run, the
    right baseline for judging what an annotation would expose.
    """

    #: |value| at or below this counts as "near zero" for divisor risk.
    ZERO_EPSILON = 1e-9
    #: Sites with fewer dynamic loads than this are flagged cold.
    COLD_THRESHOLD = 16

    def __init__(self) -> None:
        super().__init__()
        self.profiles: Dict[int, SiteProfile] = {}

    def _serve_load(
        self, pc: int, addr: int, actual: Number, approximable: bool, is_float: bool
    ) -> Number:
        if approximable:
            profile = self.profiles.get(pc)
            if profile is None:
                profile = SiteProfile(pc=pc, is_float=is_float)
                self.profiles[pc] = profile
            address_like = (
                not is_float
                and isinstance(actual, int)
                and self._looks_like_address(actual)
            )
            profile.observe(actual, address_like, self.ZERO_EPSILON)
        return actual

    def _looks_like_address(self, value: int) -> bool:
        """Does an integer value fall inside any allocated region?"""
        for region in self.space.regions():
            if region.base <= value < region.end:
                return True
        return False

    def report(self) -> AuditReport:
        """Evaluate the guideline heuristics over everything observed."""
        warnings: List[AnnotationWarning] = []
        for pc, profile in sorted(self.profiles.items()):
            if profile.loads and profile.near_zero_loads:
                fraction = profile.near_zero_loads / profile.loads
                warnings.append(
                    AnnotationWarning(
                        pc,
                        "zero-divisor-risk",
                        f"{fraction:.0%} of loads returned ~0; a zero "
                        "approximation would crash any division by this value",
                    )
                )
            if profile.address_like_loads > profile.loads * 0.5:
                warnings.append(
                    AnnotationWarning(
                        pc,
                        "address-like",
                        "values consistently fall inside allocated regions — "
                        "possible pointer/index annotated approximate",
                    )
                )
            if (
                not profile.is_float
                and profile.loads >= 4
                and profile.distinct_small_values <= {0, 1}
            ):
                warnings.append(
                    AnnotationWarning(
                        pc,
                        "boolean-flag",
                        "only values 0/1 observed — likely a branch flag "
                        "(control flow should not be approximated)",
                    )
                )
            if 0 < profile.loads < self.COLD_THRESHOLD:
                warnings.append(
                    AnnotationWarning(
                        pc,
                        "cold-site",
                        f"only {profile.loads} dynamic loads — annotation "
                        "effort should target the common case",
                    )
                )
        return AuditReport(warnings=warnings, sites=dict(self.profiles))


def audit_workload(workload, seed: int = 0) -> AuditReport:
    """Run a workload against an :class:`AuditingMemory` and report.

    Convenience wrapper::

        from repro.annotations import audit_workload
        from repro.workloads import get_workload

        report = audit_workload(get_workload("canneal", small=True))
        print(report.format())
    """
    memory = AuditingMemory()
    workload.execute(memory, seed)
    return memory.report()
