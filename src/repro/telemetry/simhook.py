"""The simulator-side telemetry hook.

Sim packages are forbidden from reading clocks or doing I/O directly
(the LVA001 determinism rule), so the simulator holds a single
``_tel`` attribute that is either ``None`` (telemetry disabled — the
hot path pays one is-None test, the same idiom as the fault model) or a
:class:`SimTelemetry` instance whose methods do all registry/trace work
over here in the telemetry package.

:class:`SimTelemetry` maintains the instruction-window **interval
snapshots**: every ``interval`` instructions it feeds the deltas of the
core :class:`~repro.sim.stats.SimulationStats` counters into the metrics
registry (``sim.instructions``, ``sim.l1.miss``, ``sim.lva.covered``,
``sim.l1.fetch``) and records an interval mark, so MPKI and coverage are
available per window, not only end-of-run. Approximator decisions are
traced through a :class:`~repro.telemetry.tracing.SampledEmitter` —
never one record per load.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.telemetry.registry import MetricsRegistry, publish_stats, safe_ratio
from repro.telemetry.tracing import SampledEmitter, TraceWriter

#: SimulationStats counter -> registry counter published per window.
_WINDOW_COUNTERS = (
    ("instructions", "sim.instructions"),
    ("loads", "sim.loads"),
    ("raw_misses", "sim.l1.miss"),
    ("covered_misses", "sim.lva.covered"),
    ("fetches", "sim.l1.fetch"),
)


class SimTelemetry:
    """Per-simulator telemetry sink; every method is cheap or sampled."""

    __slots__ = (
        "registry",
        "tracer",
        "interval",
        "_next_mark",
        "_window",
        "_last",
        "_decisions",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Optional[TraceWriter] = None,
        interval: int = 100_000,
        sample: int = 1024,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.interval = max(1, int(interval))
        self._next_mark = self.interval
        self._window = 0
        self._last: Dict[str, int] = {}
        self._decisions: Optional[SampledEmitter] = None
        if tracer is not None:
            self._decisions = SampledEmitter(tracer, "lva.decision", sample)

    # -- hot-path entry points (guarded by `is not None` at the caller) -- #

    def on_load(self, stats: object) -> None:
        """Per-load hook: records an interval mark at window boundaries."""
        if stats.instructions >= self._next_mark:  # type: ignore[attr-defined]
            self._mark(stats)

    def on_decision(
        self, pc: int, addr: int, approximated: bool, fetched: bool
    ) -> None:
        """Approximator decision, traced at the configured sample rate."""
        if self._decisions is not None:
            self._decisions.emit(
                pc=pc, addr=addr, approximated=approximated, fetched=fetched
            )

    def on_fault(self, kind: str, addr: int) -> None:
        """An injected memory fault fired inside the hierarchy."""
        if self.tracer is not None:
            self.tracer.emit("fault.memory", kind=kind, addr=addr)

    # -- lifecycle ------------------------------------------------------- #

    def _mark(self, stats: object) -> None:
        for field, metric in _WINDOW_COUNTERS:
            value = getattr(stats, field)
            delta = value - self._last.get(field, 0)
            if delta > 0:
                self.registry.counter(metric).add(delta)
            self._last[field] = value
        self._window += 1
        snapshot = self.registry.mark_interval(label=f"window{self._window}")
        instr = snapshot.get("sim.instructions", 0)
        misses = snapshot.get("sim.l1.miss", 0)
        covered = snapshot.get("sim.lva.covered", 0)
        self.registry.gauge("sim.window.mpki").set(
            safe_ratio(misses - covered, instr, scale=1000.0)  # type: ignore[operator]
        )
        self.registry.gauge("sim.window.coverage").set(
            safe_ratio(covered, misses)  # type: ignore[arg-type]
        )
        self._next_mark = (
            getattr(stats, "instructions") // self.interval + 1
        ) * self.interval

    def finish(self, stats: object) -> None:
        """Final mark + end-of-run gauges; called from ``finish()``."""
        self._mark(stats)
        publish_stats(self.registry, stats, "sim.total")
        self.registry.gauge("sim.mpki").set(stats.mpki)  # type: ignore[attr-defined]
        self.registry.gauge("sim.coverage").set(stats.coverage)  # type: ignore[attr-defined]
        if self.tracer is not None:
            self.tracer.emit(
                "sim.finish",
                instructions=stats.instructions,  # type: ignore[attr-defined]
                mpki=stats.mpki,  # type: ignore[attr-defined]
                coverage=stats.coverage,  # type: ignore[attr-defined]
            )
