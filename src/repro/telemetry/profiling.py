"""Profiling hooks: per-component timing with speedscope export.

A :class:`Profiler` records properly nested open/close frame events
(``begin``/``end`` or the :meth:`Profiler.frame` context manager) using
``perf_counter_ns`` and exports them as a flamegraph-ready `speedscope
<https://www.speedscope.app>`_ "evented" JSON document.

The registry/trace layers answer *what happened*; the profiler answers
*where the wall time went* — per component (workload generation, cache
simulation, approximator training, rendering), not per Python function.
For function-level detail :func:`profile_to_text` wraps :mod:`cProfile`;
it replaces the bespoke profiling code the experiment runner used to
carry inline.

Timing hot paths costs two clock reads per frame, so profilers should
wrap component-sized regions (a whole sweep point, a render), not
per-load work. The :data:`HOT` flag — read once at import from
``REPRO_TELEMETRY_HOT``, a compile-time-style switch — lets the test
suite and brave users opt per-load spans in anyway.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.envspec import TELEMETRY_HOT_ENV
from repro.errors import ConfigurationError

#: Compile-time-style switch for per-load ("hot") timing. Read once at
#: import so the hot path tests a constant, not the environment.
HOT: bool = os.environ.get(TELEMETRY_HOT_ENV, "") not in ("", "0")


class Profiler:
    """Records nested timing frames; exports speedscope JSON."""

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._origin_ns = time.perf_counter_ns()
        #: Open frame stack: (frame name, open timestamp offset).
        self._stack: List[Tuple[str, int]] = []
        #: Closed events: (type "O"/"C", frame name, offset ns).
        self._events: List[Tuple[str, str, int]] = []

    def _now(self) -> int:
        return time.perf_counter_ns() - self._origin_ns

    def begin(self, frame: str) -> None:
        """Open a frame; frames must close in LIFO order."""
        at = self._now()
        self._stack.append((frame, at))
        self._events.append(("O", frame, at))

    def end(self, frame: str) -> int:
        """Close the innermost frame (must match); returns duration ns."""
        if not self._stack or self._stack[-1][0] != frame:
            open_name = self._stack[-1][0] if self._stack else None
            raise ConfigurationError(
                f"profiler frame mismatch: closing {frame!r}, "
                f"innermost open frame is {open_name!r}"
            )
        _, opened = self._stack.pop()
        at = self._now()
        self._events.append(("C", frame, at))
        return at - opened

    def frame(self, name: str) -> "_Frame":
        """Context manager form of :meth:`begin`/:meth:`end`."""
        return _Frame(self, name)

    def timings(self) -> Dict[str, float]:
        """Total seconds per frame name (self+children, closed frames)."""
        opened: Dict[str, List[int]] = {}
        totals: Dict[str, int] = {}
        for kind, frame, at in self._events:
            if kind == "O":
                opened.setdefault(frame, []).append(at)
            else:
                start = opened[frame].pop()
                totals[frame] = totals.get(frame, 0) + (at - start)
        return {frame: ns / 1e9 for frame, ns in totals.items()}

    def to_speedscope(self) -> Dict[str, Any]:
        """The profile as a speedscope "evented" document (dict)."""
        end_at = self._now()
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, str]] = []
        events: List[Dict[str, object]] = []
        for kind, frame, at in self._events:
            idx = frame_index.get(frame)
            if idx is None:
                idx = len(frames)
                frame_index[frame] = idx
                frames.append({"name": frame})
            events.append({"type": kind, "frame": idx, "at": at})
        # Close any still-open frames so the document is well formed.
        for frame, _ in reversed(self._stack):
            events.append({"type": "C", "frame": frame_index[frame], "at": end_at})
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": self.name,
            "activeProfileIndex": 0,
            "exporter": "repro.telemetry",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "evented",
                    "name": self.name,
                    "unit": "nanoseconds",
                    "startValue": 0,
                    "endValue": end_at,
                    "events": events,
                }
            ],
        }

    def write_speedscope(self, path: Union[str, Path]) -> Path:
        """Write the speedscope document to ``path``; returns the path."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.to_speedscope(), indent=1), encoding="utf-8")
        return out


class _Frame:
    """Context manager pairing ``begin``/``end`` for one profiler frame."""

    __slots__ = ("_profiler", "_name", "duration_ns")

    def __init__(self, profiler: Profiler, name: str) -> None:
        self._profiler = profiler
        self._name = name
        self.duration_ns = 0

    def __enter__(self) -> "_Frame":
        self._profiler.begin(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration_ns = self._profiler.end(self._name)


def validate_speedscope(doc: Dict[str, Any]) -> None:
    """Check a speedscope "evented" document; raises on malformation.

    Validates the invariants the viewer relies on: frame indices in
    range, per-profile events sorted by ``at``, and open/close events
    strictly nested (every C matches the innermost open O).
    """
    if not isinstance(doc.get("shared"), dict) or not isinstance(
        doc["shared"].get("frames"), list
    ):
        raise ConfigurationError("speedscope document missing shared.frames")
    n_frames = len(doc["shared"]["frames"])
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ConfigurationError("speedscope document has no profiles")
    for profile in profiles:
        if profile.get("type") != "evented":
            raise ConfigurationError(
                f"unsupported profile type {profile.get('type')!r}"
            )
        last_at = profile.get("startValue", 0)
        stack: List[int] = []
        for event in profile.get("events", []):
            frame = event.get("frame")
            at = event.get("at")
            if not isinstance(frame, int) or not 0 <= frame < n_frames:
                raise ConfigurationError(f"event frame {frame!r} out of range")
            if not isinstance(at, int) or at < last_at:
                raise ConfigurationError("events are not sorted by 'at'")
            last_at = at
            if event.get("type") == "O":
                stack.append(frame)
            elif event.get("type") == "C":
                if not stack or stack.pop() != frame:
                    raise ConfigurationError(
                        f"close event for frame {frame} does not match "
                        "the innermost open frame"
                    )
            else:
                raise ConfigurationError(f"bad event type {event.get('type')!r}")
        if stack:
            raise ConfigurationError(f"unclosed frames at end of profile: {stack}")
        if profile.get("endValue", last_at) < last_at:
            raise ConfigurationError("endValue precedes the last event")


def profile_to_text(
    fn: Callable[[], Any], limit: int = 25, sort: str = "cumulative"
) -> Tuple[Any, str]:
    """Run ``fn`` under :mod:`cProfile`; return (result, stats text)."""
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    return result, buffer.getvalue()


def maybe_profiler(enabled: bool, name: str = "repro") -> Optional[Profiler]:
    """A :class:`Profiler` when ``enabled``, else ``None`` (guard idiom)."""
    return Profiler(name) if enabled else None
