"""``lva-trace`` — summarize a telemetry trace file.

Usage::

    lva-trace runs/trace.jsonl             # human-readable summary
    lva-trace runs/trace.jsonl --json      # machine-readable summary
    lva-trace t.jsonl --check-wall 5       # point spans ≈ engine wall ±5%
    lva-trace t.jsonl --check-speedscope profile.json

The ``--check-*`` flags turn the tool into a CI assertion: a failed
check prints the reason and exits 1.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.telemetry.profiling import validate_speedscope
from repro.telemetry.tracing import TraceError, iter_spans, read_trace


def summarize(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate a parsed trace into a summary dict."""
    events: Dict[str, int] = {}
    pids = set()
    spans: Dict[str, Dict[str, float]] = {}
    lifecycle: Dict[str, int] = {}
    faults: Dict[str, int] = {}
    wall_s: Optional[float] = None
    first_t: Optional[int] = None
    last_t: Optional[int] = None
    for record in records:
        ev = str(record["ev"])
        events[ev] = events.get(ev, 0) + 1
        pids.add(record["pid"])
        t = record["t"]
        if isinstance(t, int):
            first_t = t if first_t is None else min(first_t, t)
            last_t = t if last_t is None else max(last_t, t)
        if ev.startswith("sweep.point."):
            stage = ev.rsplit(".", 1)[1]
            lifecycle[stage] = lifecycle.get(stage, 0) + 1
        elif ev.startswith("fault."):
            kind = str(record.get("kind", "unknown"))
            faults[f"{ev}:{kind}"] = faults.get(f"{ev}:{kind}", 0) + 1
        elif ev == "sweep.summary":
            elapsed = record.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                wall_s = float(elapsed)
    for span in iter_spans(records):
        name = str(span.get("name"))
        agg = spans.setdefault(name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        dur_s = float(span.get("dur_ns", 0)) / 1e9  # type: ignore[arg-type]
        agg["count"] += 1
        agg["total_s"] += dur_s
        agg["max_s"] = max(agg["max_s"], dur_s)
    summary: Dict[str, object] = {
        "records": len(records),
        "processes": len(pids),
        "events": dict(sorted(events.items())),
        "spans": {name: spans[name] for name in sorted(spans)},
        "point_lifecycle": dict(sorted(lifecycle.items())),
        "faults": dict(sorted(faults.items())),
    }
    if first_t is not None and last_t is not None:
        summary["trace_window_s"] = (last_t - first_t) / 1e9
    if wall_s is not None:
        summary["engine_wall_s"] = wall_s
    return summary


def _print_summary(summary: Dict[str, object]) -> None:
    print(f"records:   {summary['records']}  (processes: {summary['processes']})")
    if "trace_window_s" in summary:
        print(f"window:    {summary['trace_window_s']:.3f} s")
    if "engine_wall_s" in summary:
        print(f"engine:    {summary['engine_wall_s']:.3f} s wall")
    events = summary["events"]
    if events:
        print("events:")
        for ev, count in events.items():  # type: ignore[union-attr]
            print(f"  {ev:<28} {count}")
    spans = summary["spans"]
    if spans:
        print("spans:")
        for name, agg in spans.items():  # type: ignore[union-attr]
            print(
                f"  {name:<28} n={agg['count']:<5} "
                f"total={agg['total_s']:.3f}s max={agg['max_s']:.3f}s"
            )
    lifecycle = summary["point_lifecycle"]
    if lifecycle:
        stages = ", ".join(f"{k}={v}" for k, v in lifecycle.items())  # type: ignore[union-attr]
        print(f"points:    {stages}")
    faults = summary["faults"]
    if faults:
        print("faults:")
        for key, count in faults.items():  # type: ignore[union-attr]
            print(f"  {key:<28} {count}")


def check_wall(summary: Dict[str, object], tolerance_pct: float) -> Optional[str]:
    """Verify per-point span time sums to the engine wall time.

    Returns an error message, or ``None`` when the check passes. Only
    meaningful for serial runs — with a process pool, per-point spans
    run concurrently and legitimately sum past wall time, so only a
    shortfall beyond tolerance fails there.
    """
    spans = summary.get("spans", {})
    point = spans.get("sweep.point") if isinstance(spans, dict) else None
    wall = summary.get("engine_wall_s")
    if point is None:
        return "trace has no sweep.point spans"
    if not isinstance(wall, (int, float)) or wall <= 0:
        return "trace has no sweep.summary wall time"
    total = float(point["total_s"])
    processes = summary.get("processes", 1)
    ratio = total / wall
    low = 1.0 - tolerance_pct / 100.0
    if ratio < low:
        return (
            f"sweep.point spans sum to {total:.3f}s but engine wall is "
            f"{wall:.3f}s ({ratio:.1%} < {low:.1%})"
        )
    if processes == 1 and ratio > 1.0 + tolerance_pct / 100.0:
        return (
            f"serial trace spans sum to {total:.3f}s, exceeding engine wall "
            f"{wall:.3f}s beyond tolerance"
        )
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lva-trace", description="Summarize a repro telemetry trace file."
    )
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    parser.add_argument(
        "--check-wall",
        type=float,
        metavar="PCT",
        help="fail unless sweep.point spans sum to engine wall time ±PCT%%",
    )
    parser.add_argument(
        "--check-speedscope",
        metavar="PATH",
        help="also validate a speedscope profile JSON file",
    )
    args = parser.parse_args(argv)

    try:
        records = read_trace(args.trace)
    except TraceError as exc:
        print(f"lva-trace: {exc}", file=sys.stderr)
        return 1
    summary = summarize(records)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        _print_summary(summary)

    status = 0
    if args.check_wall is not None:
        error = check_wall(summary, args.check_wall)
        if error is None:
            print(f"check-wall: OK (±{args.check_wall:g}%)")
        else:
            print(f"check-wall: FAIL: {error}", file=sys.stderr)
            status = 1
    if args.check_speedscope:
        try:
            doc = json.loads(
                open(args.check_speedscope, "r", encoding="utf-8").read()
            )
            validate_speedscope(doc)
        except Exception as exc:  # surfaced as a CI failure, not a crash
            print(f"check-speedscope: FAIL: {exc}", file=sys.stderr)
            status = 1
        else:
            print("check-speedscope: OK")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
