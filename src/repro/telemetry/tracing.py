"""Structured trace/event layer: append-only JSONL spans and events.

A :class:`TraceWriter` appends one JSON object per line to a trace file
that lives beside the run journal. Every record carries:

``ev``
    Event name (dotted, e.g. ``sweep.point.done``, ``fault.engine``).
``t``
    Wall-clock timestamp in nanoseconds (``time.time_ns``).
``pid``
    Writing process id — sweep workers append to the same file.

Span records (``"ev": "span"``) additionally carry ``name`` and
``dur_ns``. Each line is written with a **single** ``os.write`` on a
file descriptor opened with ``O_APPEND``, which POSIX guarantees to be
atomic for reasonable line sizes — concurrent pool workers therefore
interleave whole lines, never corrupt each other. This is the same
multi-process contract the run journal relies on.

Writers degrade rather than fail: if the trace path cannot be opened or
a write raises, the writer warns once and becomes a no-op — telemetry
must never take down a simulation.

:func:`read_trace` is the strict parser used by the ``lva-trace`` CLI
and the test suite.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ReproError


class TraceError(ReproError):
    """A trace file could not be parsed."""


class _Span:
    """Context manager timing one named region; emitted on exit."""

    __slots__ = ("_writer", "name", "fields", "_start_ns")

    def __init__(self, writer: "TraceWriter", name: str, fields: Dict[str, object]):
        self._writer = writer
        self.name = name
        self.fields = fields
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        dur_ns = time.perf_counter_ns() - self._start_ns
        record = dict(self.fields)
        record["name"] = self.name
        record["dur_ns"] = dur_ns
        if exc_type is not None:
            record["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._writer.emit("span", **record)


class TraceWriter:
    """Appends JSONL trace records to ``path``; safe across processes."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._warned = False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: OSError) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"trace file {self.path} is unwritable ({exc}); "
                "tracing disabled for this process",
                RuntimeWarning,
                stacklevel=3,
            )
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
        self._fd = None

    @property
    def active(self) -> bool:
        """Whether this writer can still emit records."""
        return self._fd is not None

    def emit(self, ev: str, **fields: object) -> None:
        """Append one event record (single atomic write)."""
        if self._fd is None:
            return
        record: Dict[str, object] = {"ev": ev, "t": time.time_ns(), "pid": os.getpid()}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        try:
            os.write(self._fd, line.encode("utf-8"))
        except OSError as exc:
            self._degrade(exc)

    def span(self, name: str, **fields: object) -> _Span:
        """Time a region; emits a ``span`` record with ``dur_ns`` on exit."""
        return _Span(self, name, dict(fields))

    def close(self) -> None:
        """Release the file descriptor (records already on disk)."""
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SampledEmitter:
    """Emit only every Nth call — hot-path decision tracing at low cost.

    The hot path pays one decrement-and-test per call; the JSON encoding
    cost is only paid on the sampled calls. ``rate=1`` records
    everything, larger rates record ``1/rate`` of calls.
    """

    __slots__ = ("_writer", "_ev", "rate", "_countdown", "dropped")

    def __init__(self, writer: TraceWriter, ev: str, rate: int):
        if rate < 1:
            raise ValueError(f"sample rate must be >= 1, got {rate}")
        self._writer = writer
        self._ev = ev
        self.rate = rate
        self._countdown = rate
        #: Calls skipped by sampling since the last emitted record.
        self.dropped = 0

    def emit(self, **fields: object) -> None:
        """Record this call if it falls on the sampling grid."""
        self._countdown -= 1
        if self._countdown:
            self.dropped += 1
            return
        self._countdown = self.rate
        self._writer.emit(self._ev, sampled=self.rate, dropped=self.dropped, **fields)
        self.dropped = 0


def read_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL trace file strictly; raises :class:`TraceError`.

    Every non-empty line must be a JSON object with ``ev``, ``t`` and
    ``pid`` keys. A partial final line (a writer killed mid-write, which
    O_APPEND atomicity makes the only possible corruption) is rejected
    too — traces are only read after their runs finish.
    """
    records: List[Dict[str, object]] = []
    trace_path = Path(path)
    try:
        text = trace_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"cannot read trace {trace_path}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{trace_path}:{lineno}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceError(f"{trace_path}:{lineno}: record is not an object")
        missing = {"ev", "t", "pid"} - record.keys()
        if missing:
            raise TraceError(
                f"{trace_path}:{lineno}: missing keys {sorted(missing)}"
            )
        records.append(record)
    return records


def iter_spans(
    records: List[Dict[str, object]], name: Optional[str] = None
) -> Iterator[Dict[str, object]]:
    """Yield span records, optionally filtered by span name."""
    for record in records:
        if record.get("ev") != "span":
            continue
        if name is not None and record.get("name") != name:
            continue
        yield record
