"""Typed metrics registry: counters, gauges and histograms.

Every observable quantity in the library flows through one
:class:`MetricsRegistry` instead of each subsystem inventing its own
dataclass-and-properties idiom. Metrics have hierarchical dotted names
(``sim.l1.miss``, ``lva.confidence.promote``, ``sweep.point.wall_s``)
and exactly one of three semantics:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (end-of-run totals, ratios);
* :class:`Histogram` — distribution summary (count/total/min/max/mean).

The registry also supports **interval snapshots**: :meth:`MetricsRegistry
.mark_interval` records the counter deltas since the previous mark, so
MPKI or coverage can be reported per instruction-window instead of only
end-of-run. The recorded intervals always sum back to the counters'
totals — a property the telemetry test suite pins.

:func:`safe_ratio` is the single zero-denominator guard used by every
``*Stats`` ratio property in the simulator (it used to be copy-pasted
per property).
"""

from __future__ import annotations

import math
import re
from dataclasses import fields, is_dataclass
from typing import Dict, List, Optional, Union

from repro.errors import ConfigurationError

Number = Union[int, float]

#: Hierarchical metric names: dot-separated lowercase segments.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def safe_ratio(
    numerator: Number,
    denominator: Number,
    scale: float = 1.0,
    default: float = 0.0,
) -> float:
    """``scale * numerator / denominator``, or ``default`` when it is undefined.

    The single source of truth for every "guard the zero denominator"
    ratio in the stats layer: MPKI (``scale=1000``), coverage, mean miss
    latency, speedups. A NaN numerator or denominator propagates as NaN
    (FAILED sweep cells must stay FAILED, not turn into ``default``).
    """
    if denominator != denominator or numerator != numerator:
        return float("nan")
    if not denominator:
        return default
    return scale * numerator / denominator


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        """Increment by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (add({amount!r}))"
            )
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A streaming distribution summary: count, total, min, max, mean."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return safe_ratio(self.total, self.count)


class MetricsRegistry:
    """Process-wide namespace of named metrics.

    Accessors are get-or-create: asking twice for the same name returns
    the same object, and asking for an existing name with a different
    kind raises — one name, one semantics.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        #: Counter values at the last interval mark (for delta snapshots).
        self._interval_base: Dict[str, Number] = {}
        #: Recorded interval snapshots, in order.
        self.intervals: List[Dict[str, object]] = []

    # -- creation -------------------------------------------------------- #

    def _get(self, name: str, kind: type) -> object:
        if not _NAME_RE.match(name):
            raise ConfigurationError(
                f"invalid metric name {name!r} (want dotted lowercase segments, "
                "e.g. 'sim.l1.miss')"
            )
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
            return metric
        if type(metric) is not kind:
            raise ConfigurationError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    # -- reading --------------------------------------------------------- #

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, float]:
        """A flat name -> value view; histograms expand to summary keys."""
        out: Dict[str, float] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = float(metric.count)
                out[f"{name}.total"] = metric.total
                out[f"{name}.mean"] = metric.mean
                if metric.count:
                    out[f"{name}.min"] = metric.minimum
                    out[f"{name}.max"] = metric.maximum
            else:
                out[name] = float(metric.value)  # type: ignore[attr-defined]
        return out

    # -- interval snapshots ---------------------------------------------- #

    def mark_interval(self, label: Optional[str] = None) -> Dict[str, object]:
        """Record counter deltas since the previous mark.

        Returns (and appends to :attr:`intervals`) a snapshot mapping
        every counter name to its increase since the last mark, plus the
        current value of every gauge. Summing a counter's column across
        all marks (after a final mark) reproduces its total.
        """
        snapshot: Dict[str, object] = {}
        if label is not None:
            snapshot["label"] = label
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                base = self._interval_base.get(name, 0)
                snapshot[name] = metric.value - base
                self._interval_base[name] = metric.value
            elif isinstance(metric, Gauge):
                snapshot[name] = metric.value
        self.intervals.append(snapshot)
        return snapshot

    def reset(self) -> None:
        """Drop every metric and recorded interval (tests, new runs)."""
        self._metrics.clear()
        self._interval_base.clear()
        self.intervals.clear()


def publish_stats(registry: MetricsRegistry, stats: object, prefix: str) -> List[str]:
    """Publish a ``*Stats`` dataclass's fields as gauges under ``prefix``.

    The bridge between the simulator's hot-path-friendly counter
    dataclasses and the registry: numeric fields become gauges named
    ``<prefix>.<field>``; set-valued fields publish their cardinality.
    Returns the metric names written.
    """
    if not is_dataclass(stats) or isinstance(stats, type):
        raise ConfigurationError(
            f"publish_stats expects a dataclass instance, got {stats!r}"
        )
    written: List[str] = []
    for spec in fields(stats):
        value = getattr(stats, spec.name)
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (set, frozenset)):
            value = len(value)
        if not isinstance(value, (int, float)):
            continue
        name = f"{prefix}.{spec.name}"
        registry.gauge(name).set(value)
        written.append(name)
    return written
