"""`repro.telemetry` — zero-overhead-when-disabled observability.

Three cooperating layers (each usable standalone):

* :mod:`repro.telemetry.registry` — typed counters/gauges/histograms
  with hierarchical names and interval snapshots;
* :mod:`repro.telemetry.tracing` — append-only JSONL spans/events,
  multi-process safe, summarized by the ``lva-trace`` CLI;
* :mod:`repro.telemetry.profiling` — nested wall-time frames with
  speedscope (flamegraph) export.

Configuration travels through environment variables — the same
mechanism the disk cache and fault injector use — so sweep pool
workers inherit it without any plumbing:

``REPRO_TELEMETRY``
    Truthy value enables the metrics registry and sim hooks.
``REPRO_TRACE``
    Path of the JSONL trace file; setting it implies telemetry on.
``REPRO_TELEMETRY_INTERVAL``
    Instructions per interval snapshot (default 100000).
``REPRO_TELEMETRY_SAMPLE``
    Per-decision trace sampling rate (default 1024; 1 = every call).

When nothing is configured, :func:`sim_hook` returns ``None`` and the
simulator hot path pays exactly one ``is None`` test per load — the
microbench suite pins this.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro import envspec
from repro.telemetry.profiling import (
    HOT,
    Profiler,
    maybe_profiler,
    profile_to_text,
    validate_speedscope,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_stats,
    safe_ratio,
)
from repro.telemetry.simhook import SimTelemetry
from repro.telemetry.tracing import (
    SampledEmitter,
    TraceError,
    TraceWriter,
    iter_spans,
    read_trace,
)

# All four knobs are declared (classification: capture-only) in
# repro.envspec; the local names predate the registry.
TELEMETRY_ENV = envspec.TELEMETRY_ENV
TRACE_ENV = envspec.TRACE_ENV
INTERVAL_ENV = envspec.TELEMETRY_INTERVAL_ENV
SAMPLE_ENV = envspec.TELEMETRY_SAMPLE_ENV

DEFAULT_INTERVAL = 100_000
DEFAULT_SAMPLE = 1024

#: Per-process cached objects, re-resolved after fork (pid changes).
_STATE: Dict[str, object] = {"pid": None, "registry": None, "tracer": None}


def _fresh_state() -> Dict[str, object]:
    pid = os.getpid()
    if _STATE["pid"] != pid:
        _STATE["pid"] = pid
        _STATE["registry"] = None
        _STATE["tracer"] = None
    return _STATE


def enabled() -> bool:
    """Whether telemetry is configured on for this process."""
    if os.environ.get(TELEMETRY_ENV, "") not in ("", "0"):
        return True
    return bool(os.environ.get(TRACE_ENV))


def trace_path() -> Optional[Path]:
    """The configured trace file path, if tracing is on."""
    raw = os.environ.get(TRACE_ENV)
    return Path(raw) if raw else None


def interval() -> int:
    """Instructions per interval snapshot."""
    try:
        return max(1, int(os.environ.get(INTERVAL_ENV, DEFAULT_INTERVAL)))
    except ValueError:
        return DEFAULT_INTERVAL


def sample_rate() -> int:
    """Sampling rate for per-decision trace events."""
    try:
        return max(1, int(os.environ.get(SAMPLE_ENV, DEFAULT_SAMPLE)))
    except ValueError:
        return DEFAULT_SAMPLE


def metrics() -> MetricsRegistry:
    """This process's metrics registry (created on first use)."""
    state = _fresh_state()
    registry = state["registry"]
    if registry is None:
        registry = MetricsRegistry()
        state["registry"] = registry
    return registry  # type: ignore[return-value]


def tracer() -> Optional[TraceWriter]:
    """This process's trace writer, or ``None`` when tracing is off."""
    path = trace_path()
    if path is None:
        return None
    state = _fresh_state()
    writer = state["tracer"]
    if writer is None or writer.path != path:  # type: ignore[union-attr]
        if writer is not None:
            writer.close()  # type: ignore[union-attr]
        writer = TraceWriter(path)
        state["tracer"] = writer
    return writer  # type: ignore[return-value]


def sim_hook() -> Optional[SimTelemetry]:
    """A :class:`SimTelemetry` for a new simulator, or ``None`` when off.

    The simulator stores the result in ``self._tel`` and guards every
    call with ``if self._tel is not None`` — the whole disabled-mode
    cost.
    """
    if not enabled():
        return None
    return SimTelemetry(
        metrics(), tracer(), interval=interval(), sample=sample_rate()
    )


def configure(
    on: bool = True,
    trace: Optional[Union[str, Path]] = None,
    snapshot_interval: Optional[int] = None,
    sample: Optional[int] = None,
) -> None:
    """Configure telemetry via the environment (inherited by workers)."""
    if on:
        os.environ[TELEMETRY_ENV] = "1"
    else:
        os.environ.pop(TELEMETRY_ENV, None)
    if trace is not None:
        os.environ[TRACE_ENV] = str(trace)
    elif not on:
        os.environ.pop(TRACE_ENV, None)
    if snapshot_interval is not None:
        os.environ[INTERVAL_ENV] = str(int(snapshot_interval))
    if sample is not None:
        os.environ[SAMPLE_ENV] = str(int(sample))
    shutdown()


def shutdown() -> None:
    """Close the trace writer and drop cached state (env is untouched)."""
    writer = _STATE.get("tracer")
    if writer is not None:
        writer.close()  # type: ignore[union-attr]
    _STATE["pid"] = None
    _STATE["registry"] = None
    _STATE["tracer"] = None


__all__ = [
    "Counter",
    "DEFAULT_INTERVAL",
    "DEFAULT_SAMPLE",
    "Gauge",
    "HOT",
    "Histogram",
    "INTERVAL_ENV",
    "MetricsRegistry",
    "Profiler",
    "SAMPLE_ENV",
    "SampledEmitter",
    "SimTelemetry",
    "TELEMETRY_ENV",
    "TRACE_ENV",
    "TraceError",
    "TraceWriter",
    "configure",
    "enabled",
    "interval",
    "iter_spans",
    "maybe_profiler",
    "metrics",
    "profile_to_text",
    "publish_stats",
    "read_trace",
    "safe_ratio",
    "sample_rate",
    "shutdown",
    "sim_hook",
    "trace_path",
    "tracer",
    "validate_speedscope",
]
