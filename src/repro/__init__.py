"""repro — a full reproduction of *Load Value Approximation* (MICRO 2014).

Load value approximation (LVA) serves L1 load misses to error-tolerant data
with values *generated* by a small hardware approximator, removing the miss
from the critical path without speculation or rollback, and — via the
approximation degree — without even fetching the block.

Public API tour — the facade (:mod:`repro.api`) is the supported entry
point for programmatic use::

    from repro import Simulation, lva

    result = (
        Simulation.builder()
        .workload("canneal", small=True)
        .approximator(lva(window=0.05, degree=4))
        .compare_precise()
        .run()
    )
    print(result.summary())

The lower layers stay importable for tooling and tinkering::

    from repro import (
        ApproximatorConfig, LoadValueApproximator,   # the contribution
        TraceSimulator, Mode,                        # phase-1 (Pin-style) sim
        FullSystemSimulator, FullSystemConfig,       # phase-2 platform
        get_workload, workload_names,                # PARSEC-substitute apps
    )

    approx = LoadValueApproximator(ApproximatorConfig(approximation_degree=4))
    decision = approx.on_miss(pc=0x400, is_float=True)
    if decision.approximated:
        value = decision.value          # the core continues with this
    if decision.fetch:                  # train when the block arrives
        approx.train(decision.token, actual_value)

Subpackages:

* :mod:`repro.core` — approximator, confidence, degree, GHB/LHB, hashing,
  plus the idealized LVP baseline;
* :mod:`repro.mem` — caches, MSHRs, MSI coherence, main memory;
* :mod:`repro.prefetch` — GHB prefetcher baseline;
* :mod:`repro.noc` — 2x2 mesh network model;
* :mod:`repro.cpu` — out-of-order core timing model;
* :mod:`repro.energy` — CACTI-style energy accounting;
* :mod:`repro.sim` — phase-1 trace-driven simulator and memory front-end;
* :mod:`repro.fullsystem` — phase-2 4-core full-system simulator;
* :mod:`repro.workloads` — the seven PARSEC-substitute benchmarks;
* :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

from repro.annotations import AuditingMemory, AuditReport, audit_workload
from repro.api import (
    RunResult,
    Simulation,
    SimulationBuilder,
    audit,
    build_approximator,
    lva,
    replay,
    run_experiment,
)
from repro.core.approximator import ApproximationDecision, LoadValueApproximator
from repro.core.config import BASELINE_CONFIG, INFINITE_WINDOW, ApproximatorConfig
from repro.predictors.lvp import IdealizedLoadValuePredictor
from repro.errors import (
    AddressError,
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.fullsystem import FullSystemConfig, FullSystemResult, FullSystemSimulator
from repro.sim.frontend import PreciseMemory
from repro.sim.trace import PackedTrace, Trace, TraceRecorder
from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.registry import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "AuditReport",
    "AuditingMemory",
    "audit_workload",
    "ApproximationDecision",
    "ApproximatorConfig",
    "BASELINE_CONFIG",
    "ConfigurationError",
    "FullSystemConfig",
    "FullSystemResult",
    "FullSystemSimulator",
    "IdealizedLoadValuePredictor",
    "INFINITE_WINDOW",
    "LoadValueApproximator",
    "Mode",
    "PackedTrace",
    "PreciseMemory",
    "ReproError",
    "RunResult",
    "Simulation",
    "SimulationBuilder",
    "SimulationError",
    "Trace",
    "TraceRecorder",
    "TraceSimulator",
    "WorkloadError",
    "audit",
    "build_approximator",
    "get_workload",
    "lva",
    "replay",
    "run_experiment",
    "workload_names",
]
