"""Core timing model (the FeS2 substitute).

A trace-driven model of a 4-wide out-of-order core with a 32-entry ROB
(Table II): instruction throughput is width-limited, and load misses are
overlapped with subsequent work until the ROB fills, at which point the
core stalls until the oldest miss resolves. Approximated loads resolve
instantly and never occupy the window.
"""

from repro.cpu.core import CoreStats, CoreTimingModel, CoreConfig

__all__ = ["CoreConfig", "CoreStats", "CoreTimingModel"]
