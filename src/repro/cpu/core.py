"""Trace-driven out-of-order core timing model.

The model captures the first-order interaction the paper measures: how much
L1 miss latency the out-of-order window can hide, and how much remains
exposed on the critical path. Canneal's simple cost computation cannot hide
its misses (large speedup from LVA); swaptions is compute-bound (little
speedup). Both behaviours emerge from the ROB-occupancy rule below.

Mechanics:

* Non-load instructions retire at ``width`` per cycle.
* A load miss issued at time *t* with latency *L* completes at *t + L*. The
  core keeps executing younger instructions until the ROB holds
  ``rob_entries`` instructions past the oldest incomplete miss, then stalls
  until that miss completes.
* An approximated load never enters the outstanding set — the approximator
  supplies its value immediately (step 3a of Figure 2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

from repro.telemetry.registry import safe_ratio

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoreConfig:
    """Core parameters (Table II: 4-wide OoO, 32-entry ROB, 2 GHz)."""

    width: int = 4
    rob_entries: int = 32
    frequency_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigurationError("pipeline width must be >= 1")
        if self.rob_entries < 1:
            raise ConfigurationError("ROB must have >= 1 entry")
        if self.frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")


@dataclass
class CoreStats:
    """Per-core timing counters."""

    instructions: int = 0
    load_misses: int = 0
    total_miss_latency: int = 0
    stall_cycles: float = 0.0

    @property
    def average_miss_latency(self) -> float:
        """Mean L1 miss latency observed by this core, in cycles."""
        return safe_ratio(self.total_miss_latency, self.load_misses)


class CoreTimingModel:
    """One core's clock, driven by a stream of instruction/load events."""

    def __init__(self, config: CoreConfig = CoreConfig()) -> None:
        self.config = config
        self.stats = CoreStats()
        self._clock = 0.0
        # (completion_time, instruction_index_at_issue) of incomplete misses,
        # oldest first.
        self._outstanding: Deque[Tuple[float, int]] = deque()

    @property
    def clock(self) -> float:
        """Current core time in cycles."""
        return self._clock

    def _drain_completed(self) -> None:
        while self._outstanding and self._outstanding[0][0] <= self._clock:
            self._outstanding.popleft()

    def _enforce_rob(self) -> None:
        """Stall when the ROB is full behind the oldest incomplete miss."""
        self._drain_completed()
        while self._outstanding:
            completion, issue_index = self._outstanding[0]
            in_flight_window = self.stats.instructions - issue_index
            if in_flight_window < self.config.rob_entries:
                break
            stall_until = completion
            if stall_until > self._clock:
                self.stats.stall_cycles += stall_until - self._clock
                self._clock = stall_until
            self._outstanding.popleft()
            self._drain_completed()

    def advance(self, instructions: int) -> None:
        """Execute ``instructions`` non-miss instructions."""
        if instructions <= 0:
            return
        # Execute in ROB-sized chunks so a full window stalls mid-stream
        # rather than letting an unbounded slug of work slide past a miss.
        remaining = instructions
        while remaining > 0:
            self._enforce_rob()
            chunk = remaining
            if self._outstanding:
                completion, issue_index = self._outstanding[0]
                room = self.config.rob_entries - (self.stats.instructions - issue_index)
                chunk = min(remaining, max(room, 1))
            self.stats.instructions += chunk
            self._clock += chunk / self.config.width
            remaining -= chunk

    def issue_load(self, latency: int, blocking: bool = True) -> None:
        """Issue one load instruction.

        Args:
            latency: Cycles until the value is available. L1 hits should
                pass the L1 latency; approximated loads pass 0.
            blocking: False for approximated loads — the core consumes the
                approximate value immediately and the (optional) fetch is
                off the critical path, so nothing enters the window.
        """
        self._enforce_rob()
        self.stats.instructions += 1
        self._clock += 1 / self.config.width
        if not blocking or latency <= 0:
            return
        self.stats.load_misses += 1
        self.stats.total_miss_latency += latency
        self._outstanding.append((self._clock + latency, self.stats.instructions))

    def finish(self) -> float:
        """Drain outstanding misses; returns the final cycle count.

        The core must wait for its oldest miss to complete before retiring —
        remaining younger work is assumed already overlapped.
        """
        if self._outstanding:
            last_completion = max(completion for completion, _ in self._outstanding)
            if last_completion > self._clock:
                self.stats.stall_cycles += last_completion - self._clock
                self._clock = last_completion
            self._outstanding.clear()
        return self._clock

    def reset(self) -> None:
        """Zero the clock, the window and the statistics."""
        self._clock = 0.0
        self._outstanding.clear()
        self.stats = CoreStats()
